/**
 * @file
 * ThreadPool unit tests: every submitted task runs exactly once,
 * nested submits are allowed, wait() is a full barrier, and the pool
 * survives bursts much larger than the worker count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "exec/thread_pool.hpp"

namespace mimoarch::exec {
namespace {

TEST(ThreadPool, ReportsRequestedThreadCount)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.threadCount(), 3u);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread)
{
    ThreadPool pool;
    EXPECT_GE(pool.threadCount(), 1u);
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    constexpr size_t kTasks = 2000;
    std::vector<std::atomic<int>> hits(kTasks);
    for (size_t i = 0; i < kTasks; ++i)
        pool.submit([&hits, i] { hits[i].fetch_add(1); });
    pool.wait();
    for (size_t i = 0; i < kTasks; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(ThreadPool, WaitIsANoOpWithNothingSubmitted)
{
    ThreadPool pool(2);
    pool.wait();
    pool.wait();
}

TEST(ThreadPool, NestedSubmitsComplete)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&pool, &count] {
            count.fetch_add(1);
            for (int j = 0; j < 4; ++j)
                pool.submit([&count] { count.fetch_add(1); });
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 8 + 8 * 4);
}

TEST(ThreadPool, WaitBarriersBeforeResultsAreRead)
{
    // Non-atomic writes published purely by wait(): the pool's
    // happens-before edges must make them visible (TSan checks this
    // in the instrumented copy of the suite).
    ThreadPool pool(4);
    std::vector<int> slots(512, 0);
    for (size_t i = 0; i < slots.size(); ++i)
        pool.submit([&slots, i] { slots[i] = static_cast<int>(i) + 1; });
    pool.wait();
    for (size_t i = 0; i < slots.size(); ++i)
        EXPECT_EQ(slots[i], static_cast<int>(i) + 1);
}

TEST(ThreadPool, TwoWorkersCanRunSimultaneously)
{
    ThreadPool pool(2);
    std::atomic<int> started{0};
    // Each task spins until the other has started; completes only if
    // both workers truly run at once.
    for (int i = 0; i < 2; ++i) {
        pool.submit([&started] {
            started.fetch_add(1);
            while (started.load() < 2)
                std::this_thread::yield();
        });
    }
    pool.wait();
    EXPECT_EQ(started.load(), 2);
}

TEST(ThreadPool, ReusableAcrossWaves)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int wave = 0; wave < 5; ++wave) {
        for (int i = 0; i < 100; ++i)
            pool.submit([&count] { count.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(count.load(), (wave + 1) * 100);
    }
}

} // namespace
} // namespace mimoarch::exec
