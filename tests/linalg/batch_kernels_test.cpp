/**
 * @file
 * The batched lane kernels (src/linalg/batch.hpp) must be
 * *bit-identical*, lane by lane, to the scalar MatrixT kernels they
 * widen: ControllerBank's equivalence proof reduces to this property.
 * These tests fuzz gemvBatch/axpyBatch against per-lane Matrix::gemv /
 * Matrix::axpy over random shapes, lane counts, and strides, with
 * NaN/Inf/signed-zero/denormal injection (no-zero-skip: 0 * NaN must
 * propagate), and pin that lanes beyond the active count are never
 * touched. The suite also runs as release/ (shipping flags), avx2/
 * (explicit SIMD dispatch), sanitized/, and tsan/ copies — see
 * tests/linalg/CMakeLists.txt.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/random.hpp"
#include "linalg/batch.hpp"
#include "linalg/matrix.hpp"

namespace mimoarch {
namespace {

uint64_t
bitsOf(double v)
{
    uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

/**
 * Bit equality, with one carve-out: two NaNs always match. When a row
 * mixes NaN sources (an injected quiet NaN vs the x86 negative
 * "indefinite" NaN that Inf * 0 generates), IEEE 754 does not specify
 * which payload the sum carries, and the compiler may commute the add
 * — so payload identity across differently-optimized copies of the
 * kernel is not a property either side guarantees. Everything else —
 * including NaN-ness itself, infinity signs, and signed zeros — must
 * be bit-exact.
 */
testing::AssertionResult
sameBitsOrBothNan(double got, double want)
{
    if (bitsOf(got) == bitsOf(want))
        return testing::AssertionSuccess();
    if (std::isnan(got) && std::isnan(want))
        return testing::AssertionSuccess();
    return testing::AssertionFailure()
           << got << " (0x" << std::hex << bitsOf(got) << ") vs "
           << want << " (0x" << bitsOf(want) << ")" << std::dec;
}

/** Poison pattern for untouched-lane checks (a signaling-ish NaN). */
constexpr double kSentinel = -1234.5678e99;

/**
 * Draw a matrix/plane element. Mostly finite noise, with exact zeros
 * (the no-zero-skip contract), signed zeros, denormals, NaN, and both
 * infinities. Comparisons go through sameBitsOrBothNan: everything is
 * bit-exact except NaN payloads, which IEEE leaves unspecified when
 * several NaN sources meet in one accumulation.
 */
double
fuzzValue(Rng &rng)
{
    switch (rng.uniformInt(12)) {
    case 0:
        return std::numeric_limits<double>::quiet_NaN();
    case 1:
        return std::numeric_limits<double>::infinity();
    case 2:
        return -std::numeric_limits<double>::infinity();
    case 3:
        return 0.0;
    case 4:
        return -0.0;
    case 5:
        return std::numeric_limits<double>::denorm_min();
    default:
        return rng.normal(0.0, 3.0);
    }
}

std::vector<double>
fuzzPlane(Rng &rng, size_t rows, size_t stride)
{
    std::vector<double> plane(rows * stride);
    for (double &v : plane)
        v = fuzzValue(rng);
    return plane;
}

/** Lane @p l of @p plane as a rows x 1 Matrix. */
Matrix
laneColumn(const std::vector<double> &plane, size_t rows, size_t stride,
           size_t l)
{
    Matrix col(rows, 1);
    for (size_t k = 0; k < rows; ++k)
        col[k] = plane[k * stride + l];
    return col;
}

TEST(BatchKernels, GemvMatchesScalarGemvBitwisePerLane)
{
    Rng rng(2016);
    for (int trial = 0; trial < 200; ++trial) {
        const size_t rows = 1 + rng.uniformInt(8);
        const size_t cols = 1 + rng.uniformInt(8);
        const size_t lanes = 1 + rng.uniformInt(37);
        const size_t stride = lanes + rng.uniformInt(9);

        Matrix a(rows, cols);
        for (size_t i = 0; i < rows; ++i)
            for (size_t j = 0; j < cols; ++j)
                a(i, j) = fuzzValue(rng);

        const std::vector<double> x = fuzzPlane(rng, cols, stride);
        std::vector<double> out(rows * stride, kSentinel);

        batch::gemvBatch(out.data(), a.data().data(), rows, cols,
                         x.data(), lanes, stride);

        Matrix ref;
        for (size_t l = 0; l < lanes; ++l) {
            const Matrix xl = laneColumn(x, cols, stride, l);
            Matrix::gemv(ref, a, xl);
            for (size_t i = 0; i < rows; ++i) {
                EXPECT_TRUE(
                    sameBitsOrBothNan(out[i * stride + l], ref[i]))
                    << "trial " << trial << " lane " << l << " row "
                    << i;
            }
        }
        // Lanes in [lanes, stride) belong to other (future) lanes and
        // must come back bit-untouched.
        for (size_t i = 0; i < rows; ++i)
            for (size_t l = lanes; l < stride; ++l)
                ASSERT_EQ(bitsOf(out[i * stride + l]),
                          bitsOf(kSentinel))
                    << "trial " << trial << " touched tail lane " << l;
    }
}

TEST(BatchKernels, AxpyMatchesScalarAxpyBitwisePerLane)
{
    Rng rng(777);
    for (int trial = 0; trial < 200; ++trial) {
        const size_t rows = 1 + rng.uniformInt(8);
        const size_t lanes = 1 + rng.uniformInt(37);
        const size_t stride = lanes + rng.uniformInt(9);
        const double alpha = fuzzValue(rng);

        const std::vector<double> x = fuzzPlane(rng, rows, stride);
        std::vector<double> y = fuzzPlane(rng, rows, stride);
        std::vector<double> y0 = y;
        for (size_t k = 0; k < rows; ++k)
            for (size_t l = lanes; l < stride; ++l)
                y[k * stride + l] = kSentinel;

        batch::axpyBatch(y.data(), alpha, x.data(), rows, lanes,
                         stride);

        for (size_t l = 0; l < lanes; ++l) {
            Matrix yl = laneColumn(y0, rows, stride, l);
            const Matrix xl = laneColumn(x, rows, stride, l);
            Matrix::axpy(yl, alpha, xl);
            for (size_t k = 0; k < rows; ++k) {
                EXPECT_TRUE(sameBitsOrBothNan(y[k * stride + l], yl[k]))
                    << "trial " << trial << " lane " << l << " row "
                    << k;
            }
        }
        for (size_t k = 0; k < rows; ++k)
            for (size_t l = lanes; l < stride; ++l)
                ASSERT_EQ(bitsOf(y[k * stride + l]), bitsOf(kSentinel))
                    << "trial " << trial << " touched tail lane " << l;
    }
}

TEST(BatchKernels, ZeroTimesNanPropagatesEveryLane)
{
    // A zero row coefficient against a NaN/Inf lane element must
    // poison the accumulator in that lane (no zero-skip), exactly as
    // the scalar kernel's contract demands — and only in that lane.
    const size_t rows = 2, cols = 3, lanes = 5, stride = 6;
    Matrix a(rows, cols);
    a(0, 0) = 0.0;
    a(0, 1) = 2.0;
    a(0, 2) = 0.0;
    a(1, 0) = 1.0;
    a(1, 1) = 0.0;
    a(1, 2) = -3.0;

    std::vector<double> x(cols * stride, 1.0);
    x[0 * stride + 1] = std::numeric_limits<double>::quiet_NaN();
    x[2 * stride + 3] = std::numeric_limits<double>::infinity();

    std::vector<double> out(rows * stride, kSentinel);
    batch::gemvBatch(out.data(), a.data().data(), rows, cols, x.data(),
                     lanes, stride);

    EXPECT_TRUE(std::isnan(out[0 * stride + 1])); // 0 * NaN row 0.
    EXPECT_TRUE(std::isnan(out[1 * stride + 1])); // 1 * NaN row 1.
    EXPECT_TRUE(std::isnan(out[0 * stride + 3])); // 0 * Inf row 0.
    // Row 1 lane 3: 1*1 + 0*1 + (-3)*Inf = -Inf, no NaN.
    EXPECT_TRUE(std::isinf(out[1 * stride + 3]));
    // Clean lanes stay clean.
    for (size_t l : {size_t{0}, size_t{2}, size_t{4}}) {
        EXPECT_EQ(out[0 * stride + l], 2.0);
        EXPECT_EQ(out[1 * stride + l], -2.0);
    }
}

TEST(BatchKernels, ExactVectorWidthAndTailLaneCounts)
{
    // lanes = 4 exercises exactly one AVX2 vector with no tail;
    // lanes = 5 forces the scalar tail loop; lanes = 3 runs tail-only.
    Rng rng(99);
    for (const size_t lanes : {size_t{3}, size_t{4}, size_t{5},
                               size_t{8}, size_t{12}}) {
        const size_t rows = 4, cols = 4, stride = lanes;
        Matrix a(rows, cols);
        for (size_t i = 0; i < rows; ++i)
            for (size_t j = 0; j < cols; ++j)
                a(i, j) = rng.normal(0.0, 1.0);
        const std::vector<double> x = fuzzPlane(rng, cols, stride);
        std::vector<double> out(rows * stride, kSentinel);
        batch::gemvBatch(out.data(), a.data().data(), rows, cols,
                         x.data(), lanes, stride);
        Matrix ref;
        for (size_t l = 0; l < lanes; ++l) {
            Matrix::gemv(ref, a, laneColumn(x, cols, stride, l));
            for (size_t i = 0; i < rows; ++i)
                EXPECT_TRUE(
                    sameBitsOrBothNan(out[i * stride + l], ref[i]))
                    << "lanes " << lanes << " lane " << l;
        }
    }
}

TEST(BatchKernels, SingleLaneDegeneratesToScalar)
{
    // N = 1 is the scalar controller's own shape: one lane, stride 1.
    Rng rng(5);
    Matrix a(3, 3);
    for (size_t i = 0; i < 3; ++i)
        for (size_t j = 0; j < 3; ++j)
            a(i, j) = rng.normal(0.0, 2.0);
    std::vector<double> x = {0.5, -0.25, 3.0};
    std::vector<double> out(3, kSentinel);
    batch::gemvBatch(out.data(), a.data().data(), 3, 3, x.data(), 1, 1);
    Matrix xm(3, 1);
    xm[0] = x[0];
    xm[1] = x[1];
    xm[2] = x[2];
    Matrix ref;
    Matrix::gemv(ref, a, xm);
    for (size_t i = 0; i < 3; ++i)
        EXPECT_EQ(bitsOf(out[i]), bitsOf(ref[i]));
}

} // namespace
} // namespace mimoarch
