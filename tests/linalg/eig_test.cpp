/**
 * @file
 * Tests for the eigenvalue solver: known spectra, complex pairs, defective
 * matrices, spectral radius, and random-matrix invariants (trace and
 * determinant equal the sum and product of eigenvalues).
 */

#include <algorithm>
#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "linalg/eig.hpp"
#include "linalg/solve.hpp"

namespace mimoarch {
namespace {

using Complex = std::complex<double>;

std::vector<Complex>
sortedByReal(std::vector<Complex> v)
{
    std::sort(v.begin(), v.end(), [](const Complex &a, const Complex &b) {
        if (a.real() != b.real())
            return a.real() < b.real();
        return a.imag() < b.imag();
    });
    return v;
}

TEST(Eig, DiagonalMatrix)
{
    auto ev = sortedByReal(eigenvalues(Matrix::diag({3.0, 1.0, 2.0})));
    ASSERT_EQ(ev.size(), 3u);
    EXPECT_NEAR(ev[0].real(), 1.0, 1e-10);
    EXPECT_NEAR(ev[1].real(), 2.0, 1e-10);
    EXPECT_NEAR(ev[2].real(), 3.0, 1e-10);
    for (const auto &l : ev)
        EXPECT_NEAR(l.imag(), 0.0, 1e-10);
}

TEST(Eig, UpperTriangularReadsDiagonal)
{
    Matrix a{{2, 5, 1}, {0, -1, 4}, {0, 0, 0.5}};
    auto ev = sortedByReal(eigenvalues(a));
    EXPECT_NEAR(ev[0].real(), -1.0, 1e-10);
    EXPECT_NEAR(ev[1].real(), 0.5, 1e-10);
    EXPECT_NEAR(ev[2].real(), 2.0, 1e-10);
}

TEST(Eig, RotationGivesComplexPair)
{
    const double t = 0.35;
    Matrix rot{{std::cos(t), -std::sin(t)}, {std::sin(t), std::cos(t)}};
    auto ev = eigenvalues(rot);
    ASSERT_EQ(ev.size(), 2u);
    for (const auto &l : ev) {
        EXPECT_NEAR(std::abs(l), 1.0, 1e-10);
        EXPECT_NEAR(std::abs(l.imag()), std::sin(t), 1e-10);
        EXPECT_NEAR(l.real(), std::cos(t), 1e-10);
    }
}

TEST(Eig, DefectiveJordanBlock)
{
    // [[1,1],[0,1]] has a double eigenvalue 1 with one eigenvector.
    Matrix a{{1, 1}, {0, 1}};
    auto ev = eigenvalues(a);
    ASSERT_EQ(ev.size(), 2u);
    for (const auto &l : ev)
        EXPECT_NEAR(std::abs(l - Complex(1.0, 0.0)), 0.0, 1e-7);
}

TEST(Eig, CompanionMatrixRoots)
{
    // Companion matrix of z^3 - 6 z^2 + 11 z - 6 = (z-1)(z-2)(z-3).
    Matrix a{{6, -11, 6}, {1, 0, 0}, {0, 1, 0}};
    auto ev = sortedByReal(eigenvalues(a));
    EXPECT_NEAR(ev[0].real(), 1.0, 1e-8);
    EXPECT_NEAR(ev[1].real(), 2.0, 1e-8);
    EXPECT_NEAR(ev[2].real(), 3.0, 1e-8);
}

TEST(Eig, TraceAndDeterminantInvariants)
{
    Rng rng(101);
    for (int trial = 0; trial < 20; ++trial) {
        const size_t n = 2 + rng.uniformInt(6); // 2..7
        Matrix a(n, n);
        for (size_t i = 0; i < n; ++i)
            for (size_t j = 0; j < n; ++j)
                a(i, j) = rng.normal();
        auto ev = eigenvalues(a);
        Complex sum(0, 0), prod(1, 0);
        for (const auto &l : ev) {
            sum += l;
            prod *= l;
        }
        EXPECT_NEAR(sum.real(), a.trace(), 1e-7 * (1.0 + std::abs(a.trace())));
        EXPECT_NEAR(sum.imag(), 0.0, 1e-7);
        const double det = determinant(a);
        EXPECT_NEAR(prod.real(), det, 1e-6 * (1.0 + std::abs(det)));
        EXPECT_NEAR(prod.imag(), 0.0, 1e-6 * (1.0 + std::abs(det)));
    }
}

TEST(Eig, SpectralRadius)
{
    Matrix a{{0.5, 1.0}, {0.0, -0.8}};
    EXPECT_NEAR(spectralRadius(a), 0.8, 1e-10);
}

TEST(Eig, SchurStability)
{
    EXPECT_TRUE(isSchurStable(Matrix::diag({0.9, -0.5})));
    EXPECT_FALSE(isSchurStable(Matrix::diag({1.0, 0.5})));
    EXPECT_FALSE(isSchurStable(Matrix::diag({0.95, 0.2}), 0.1));
    EXPECT_TRUE(isSchurStable(Matrix::diag({0.85, 0.2}), 0.1));
}

TEST(Eig, ComplexMatrixEigenvalues)
{
    CMatrix a(2, 2);
    a(0, 0) = Complex(0, 1);
    a(1, 1) = Complex(2, -1);
    auto ev = eigenvalues(a);
    ASSERT_EQ(ev.size(), 2u);
    const bool found_i =
        std::any_of(ev.begin(), ev.end(), [](const Complex &l) {
            return std::abs(l - Complex(0, 1)) < 1e-9;
        });
    const bool found_other =
        std::any_of(ev.begin(), ev.end(), [](const Complex &l) {
            return std::abs(l - Complex(2, -1)) < 1e-9;
        });
    EXPECT_TRUE(found_i);
    EXPECT_TRUE(found_other);
}

TEST(Eig, SingleElement)
{
    auto ev = eigenvalues(Matrix{{4.2}});
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_NEAR(ev[0].real(), 4.2, 1e-12);
}

TEST(Eig, LargerRandomSimilarityInvariance)
{
    // Eigenvalues are invariant under similarity transforms.
    Rng rng(55);
    Matrix a(5, 5);
    for (size_t i = 0; i < 5; ++i)
        for (size_t j = 0; j < 5; ++j)
            a(i, j) = rng.normal();
    Matrix t(5, 5);
    for (size_t i = 0; i < 5; ++i)
        for (size_t j = 0; j < 5; ++j)
            t(i, j) = rng.normal() + (i == j ? 3.0 : 0.0);
    Matrix b = solve(t, a * t); // T^-1 A T
    auto ev_a = eigenvalues(a);
    auto ev_b = eigenvalues(b);
    ASSERT_EQ(ev_a.size(), ev_b.size());
    // Greedy nearest matching: sorting complex conjugate pairs by real
    // part is not a stable order across the two computations.
    for (const auto &la : ev_a) {
        size_t best = 0;
        double best_dist = 1e300;
        for (size_t i = 0; i < ev_b.size(); ++i) {
            const double d = std::abs(la - ev_b[i]);
            if (d < best_dist) {
                best_dist = d;
                best = i;
            }
        }
        EXPECT_NEAR(best_dist, 0.0, 1e-6);
        ev_b.erase(ev_b.begin() + static_cast<long>(best));
    }
}

} // namespace
} // namespace mimoarch
