/**
 * @file
 * The in-place hot-path kernels (mulInto, gemv, addInto, subInto,
 * transposeInto, axpy, scaleInto) must be *bit-identical* to the
 * allocating operator forms they shadow: the golden-trace digests hash
 * every double of every epoch, so a single different rounding anywhere
 * in the controller hot path is a regression. These tests pin that
 * contract at the kernel level, plus the NaN-propagation fix in
 * operator* (the old zero-skip dropped 0*NaN / 0*Inf).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "common/random.hpp"
#include "linalg/matrix.hpp"

namespace mimoarch {
namespace {

uint64_t
bitsOf(double v)
{
    uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

/** Bitwise equality: NaN payloads and signed zeros must match too. */
void
expectBitEqual(const Matrix &a, const Matrix &b, const char *what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    for (size_t i = 0; i < a.rows(); ++i) {
        for (size_t j = 0; j < a.cols(); ++j) {
            EXPECT_EQ(bitsOf(a(i, j)), bitsOf(b(i, j)))
                << what << " differs at (" << i << ", " << j << "): "
                << a(i, j) << " vs " << b(i, j);
        }
    }
}

Matrix
randomMatrix(Rng &rng, size_t rows, size_t cols)
{
    Matrix m(rows, cols);
    for (size_t i = 0; i < rows; ++i)
        for (size_t j = 0; j < cols; ++j)
            m(i, j) = rng.normal(0.0, 3.0);
    return m;
}

TEST(Kernels, MulIntoMatchesOperatorBitwise)
{
    Rng rng(42);
    for (int trial = 0; trial < 20; ++trial) {
        const size_t n = 1 + static_cast<size_t>(trial % 7);
        const size_t k = 1 + static_cast<size_t>((trial * 3) % 5);
        const size_t p = 1 + static_cast<size_t>((trial * 5) % 6);
        const Matrix a = randomMatrix(rng, n, k);
        const Matrix b = randomMatrix(rng, k, p);
        Matrix out;
        Matrix::mulInto(out, a, b);
        expectBitEqual(out, a * b, "mulInto");
    }
}

TEST(Kernels, MulIntoHandlesZeroEntries)
{
    // Exact zeros in A exercise the no-zero-skip contract: the kernel
    // must take the same accumulation path as operator*.
    const Matrix a{{0.0, 2.0, 0.0}, {1.0, 0.0, -3.0}};
    const Matrix b{{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}};
    Matrix out;
    Matrix::mulInto(out, a, b);
    expectBitEqual(out, a * b, "mulInto with zeros");
}

TEST(Kernels, GemvMatchesOperatorBitwise)
{
    Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        const size_t n = 1 + static_cast<size_t>(trial % 6);
        const size_t k = 1 + static_cast<size_t>((trial * 7) % 8);
        const Matrix a = randomMatrix(rng, n, k);
        const Matrix x = randomMatrix(rng, k, 1);
        Matrix out;
        Matrix::gemv(out, a, x);
        expectBitEqual(out, a * x, "gemv");
    }
}

TEST(Kernels, AddSubIntoMatchOperatorsBitwise)
{
    Rng rng(3);
    const Matrix a = randomMatrix(rng, 5, 4);
    const Matrix b = randomMatrix(rng, 5, 4);
    Matrix sum, diff;
    Matrix::addInto(sum, a, b);
    Matrix::subInto(diff, a, b);
    expectBitEqual(sum, a + b, "addInto");
    expectBitEqual(diff, a - b, "subInto");

    // Aliased output (out == a) is allowed for the elementwise kernels.
    Matrix acc = a;
    Matrix::addInto(acc, acc, b);
    expectBitEqual(acc, a + b, "addInto aliased");
}

TEST(Kernels, TransposeIntoMatchesTransposeBitwise)
{
    Rng rng(11);
    const Matrix a = randomMatrix(rng, 3, 6);
    Matrix out;
    Matrix::transposeInto(out, a);
    expectBitEqual(out, a.transpose(), "transposeInto");
}

TEST(Kernels, AxpyMatchesOperatorsBitwise)
{
    Rng rng(19);
    const Matrix x = randomMatrix(rng, 6, 1);
    const Matrix y0 = randomMatrix(rng, 6, 1);
    const double alpha = 0.1;
    Matrix y = y0;
    Matrix::axpy(y, alpha, x);
    // IEEE-754 multiplication is commutative, so alpha*x[i] == x[i]*alpha
    // bit-for-bit and the operator chain is an exact reference.
    expectBitEqual(y, y0 + x * alpha, "axpy");
}

TEST(Kernels, ScaleIntoMatchesOperatorBitwise)
{
    Rng rng(23);
    const Matrix a = randomMatrix(rng, 4, 3);
    Matrix out;
    Matrix::scaleInto(out, a, -1.75);
    expectBitEqual(out, a * -1.75, "scaleInto");
}

TEST(Kernels, ResizeShapeReusesStorageAndZeroFills)
{
    Matrix m(4, 3, 5.0);
    const double *before = m.data().data();
    m.resizeShape(3, 4); // same element count: storage must be reused
    EXPECT_EQ(m.data().data(), before);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);

    m.resizeShape(2, 2); // different count: fresh zero-initialized cells
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 2u);
    for (size_t i = 0; i < 2; ++i)
        for (size_t j = 0; j < 2; ++j)
            EXPECT_EQ(m(i, j), 0.0);
}

TEST(KernelsDeath, ShapeAndAliasingViolationsPanic)
{
    const Matrix a(2, 3, 1.0);
    const Matrix b(3, 2, 1.0);
    Matrix out;
    EXPECT_DEATH(Matrix::mulInto(out, a, a), "");       // inner mismatch
    EXPECT_DEATH(Matrix::gemv(out, a, a), "");          // x not a vector
    Matrix alias = a;
    EXPECT_DEATH(Matrix::mulInto(alias, alias, b), ""); // out aliases a
    EXPECT_DEATH(Matrix::transposeInto(alias, alias), "");
}

// --- NaN/Inf propagation: the operator* zero-skip regression -------

TEST(Kernels, ZeroTimesNanPropagatesThroughProduct)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();

    // Row of zeros times a NaN-poisoned vector: IEEE says 0*NaN = NaN,
    // so the product must be NaN. The old kernel skipped aik == 0 and
    // silently produced 0.0 instead.
    const Matrix a{{0.0, 0.0}, {1.0, 0.0}};
    const Matrix x = Matrix::vector({nan, 2.0});
    const Matrix y = a * x;
    EXPECT_TRUE(std::isnan(y[0])) << "0*NaN was swallowed";
    EXPECT_TRUE(std::isnan(y[1])) << "1*NaN must stay NaN";

    // 0 * Inf is also NaN, not 0.
    const Matrix xi = Matrix::vector({inf, 2.0});
    const Matrix yi = a * xi;
    EXPECT_TRUE(std::isnan(yi[0])) << "0*Inf was swallowed";

    // The in-place kernels follow the same contract.
    Matrix out;
    Matrix::gemv(out, a, x);
    EXPECT_TRUE(std::isnan(out[0]));
    Matrix::mulInto(out, a, x);
    EXPECT_TRUE(std::isnan(out(0, 0)));
}

TEST(Kernels, FiniteProductsUnaffectedByNoSkipChange)
{
    // For finite inputs, keeping the aik == 0 terms cannot change the
    // result: the accumulator starts at +0.0, adding ±0.0 to any value
    // that is not -0.0 is the identity, and a partial sum can only be
    // -0.0 if every term so far was -0.0 (impossible starting from
    // +0.0 in round-to-nearest). Spot-check a signed-zero-heavy case.
    const Matrix a{{0.0, -0.0, 0.0}};
    const Matrix b{{-5.0}, {3.0}, {-0.0}};
    const Matrix y = a * b;
    EXPECT_EQ(bitsOf(y[0]), bitsOf(0.0)); // +0.0, not -0.0
}

} // namespace
} // namespace mimoarch
