/**
 * @file
 * Tests for Householder QR and (ridge) least squares.
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "linalg/leastsq.hpp"
#include "linalg/solve.hpp"

namespace mimoarch {
namespace {

TEST(Qr, ExactSquareSolve)
{
    Matrix a{{2, 1}, {1, 3}};
    Matrix b = Matrix::vector({5.0, 10.0});
    Matrix x = solveLeastSquares(a, b);
    EXPECT_TRUE(approxEqual(a * x, b, 1e-12));
}

TEST(Qr, OverdeterminedConsistentSystem)
{
    // Stack an exactly-solvable system: the residual must be ~0.
    Matrix a{{1, 0}, {0, 1}, {1, 1}};
    Matrix x_true = Matrix::vector({2.0, -1.0});
    Matrix b = a * x_true;
    Matrix x = solveLeastSquares(a, b);
    EXPECT_TRUE(approxEqual(x, x_true, 1e-12));
}

TEST(Qr, LeastSquaresMatchesNormalEquations)
{
    Rng rng(42);
    Matrix a(20, 3);
    Matrix b(20, 1);
    for (size_t i = 0; i < 20; ++i) {
        for (size_t j = 0; j < 3; ++j)
            a(i, j) = rng.normal();
        b(i, 0) = rng.normal();
    }
    Matrix x_qr = solveLeastSquares(a, b);
    Matrix x_ne = solve(a.transpose() * a, a.transpose() * b);
    EXPECT_TRUE(approxEqual(x_qr, x_ne, 1e-9));
}

TEST(Qr, MultipleRightHandSides)
{
    Matrix a{{1, 0}, {0, 2}, {1, 1}};
    Matrix x_true{{1, -3}, {2, 4}};
    Matrix b = a * x_true;
    Matrix x = solveLeastSquares(a, b);
    EXPECT_TRUE(approxEqual(x, x_true, 1e-12));
}

TEST(Qr, RFactorIsUpperTriangularAndConsistent)
{
    Matrix a{{1, 2}, {3, 4}, {5, 6}};
    QrDecomposition qr(a);
    Matrix r = qr.r();
    EXPECT_EQ(r.rows(), 2u);
    EXPECT_NEAR(r(1, 0), 0.0, 1e-14);
    // |det(R)| equals sqrt(det(A^T A)).
    const double det_r = std::abs(r(0, 0) * r(1, 1));
    const double det_ata = determinant(a.transpose() * a);
    EXPECT_NEAR(det_r, std::sqrt(det_ata), 1e-9);
}

TEST(Qr, RankDeficiencyDetected)
{
    Matrix a{{1, 2}, {2, 4}, {3, 6}};
    QrDecomposition qr(a);
    EXPECT_FALSE(qr.fullRank());
}

TEST(Ridge, ZeroLambdaMatchesPlainLeastSquares)
{
    Matrix a{{1, 0}, {0, 1}, {1, 1}};
    Matrix b = Matrix::vector({1.0, 2.0, 2.5});
    EXPECT_TRUE(approxEqual(solveRidge(a, b, 0.0),
                            solveLeastSquares(a, b), 1e-12));
}

TEST(Ridge, ShrinksSolutionTowardZero)
{
    Matrix a{{1, 0}, {0, 1}};
    Matrix b = Matrix::vector({1.0, 1.0});
    Matrix x0 = solveRidge(a, b, 0.0);
    Matrix x1 = solveRidge(a, b, 1.0);
    EXPECT_LT(norm2(x1), norm2(x0));
    // Closed form for identity A: x = b / (1 + lambda).
    EXPECT_NEAR(x1[0], 0.5, 1e-12);
}

TEST(Ridge, HandlesRankDeficientRegressor)
{
    // Plain least squares would be fatal; ridge must succeed.
    Matrix a{{1, 1}, {2, 2}, {3, 3}};
    Matrix b = Matrix::vector({2.0, 4.0, 6.0});
    Matrix x = solveRidge(a, b, 1e-6);
    // Symmetry: both coefficients equal.
    EXPECT_NEAR(x[0], x[1], 1e-9);
    EXPECT_NEAR(x[0] + x[1], 2.0, 1e-3);
}

TEST(Ridge, NegativeLambdaIsFatal)
{
    Matrix a{{1.0}};
    Matrix b{{1.0}};
    EXPECT_EXIT(solveRidge(a, b, -1.0), testing::ExitedWithCode(1),
                "non-negative");
}

} // namespace
} // namespace mimoarch
