/**
 * @file
 * Unit tests for the dense matrix type: construction, arithmetic, blocks,
 * concatenation, and norms.
 */

#include <gtest/gtest.h>

#include "linalg/matrix.hpp"

namespace mimoarch {
namespace {

TEST(Matrix, DefaultConstructedIsEmpty)
{
    Matrix m;
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
    EXPECT_TRUE(m.empty());
}

TEST(Matrix, SizedConstructorZeroInitializes)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    for (size_t r = 0; r < 2; ++r)
        for (size_t c = 0; c < 3; ++c)
            EXPECT_EQ(m(r, c), 0.0);
}

TEST(Matrix, FillConstructor)
{
    Matrix m(2, 2, 7.0);
    EXPECT_EQ(m(0, 0), 7.0);
    EXPECT_EQ(m(1, 1), 7.0);
}

TEST(Matrix, InitializerListLayout)
{
    Matrix m{{1, 2, 3}, {4, 5, 6}};
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m(0, 2), 3.0);
    EXPECT_EQ(m(1, 0), 4.0);
}

TEST(Matrix, VectorFactory)
{
    Matrix v = Matrix::vector({1.0, 2.0, 3.0});
    EXPECT_TRUE(v.isVector());
    EXPECT_EQ(v.rows(), 3u);
    EXPECT_EQ(v[1], 2.0);
}

TEST(Matrix, IdentityAndDiag)
{
    Matrix i = Matrix::identity(3);
    EXPECT_EQ(i(0, 0), 1.0);
    EXPECT_EQ(i(0, 1), 0.0);
    Matrix d = Matrix::diag({2.0, 3.0});
    EXPECT_EQ(d(0, 0), 2.0);
    EXPECT_EQ(d(1, 1), 3.0);
    EXPECT_EQ(d(1, 0), 0.0);
}

TEST(Matrix, AdditionSubtraction)
{
    Matrix a{{1, 2}, {3, 4}};
    Matrix b{{4, 3}, {2, 1}};
    Matrix s = a + b;
    EXPECT_TRUE(approxEqual(s, Matrix{{5, 5}, {5, 5}}));
    Matrix d = a - b;
    EXPECT_TRUE(approxEqual(d, Matrix{{-3, -1}, {1, 3}}));
}

TEST(Matrix, ScalarMultiply)
{
    Matrix a{{1, 2}, {3, 4}};
    EXPECT_TRUE(approxEqual(2.0 * a, Matrix{{2, 4}, {6, 8}}));
    EXPECT_TRUE(approxEqual(a * 0.5, Matrix{{0.5, 1}, {1.5, 2}}));
    EXPECT_TRUE(approxEqual(-a, Matrix{{-1, -2}, {-3, -4}}));
}

TEST(Matrix, Product)
{
    Matrix a{{1, 2}, {3, 4}};
    Matrix b{{5, 6}, {7, 8}};
    EXPECT_TRUE(approxEqual(a * b, Matrix{{19, 22}, {43, 50}}));
}

TEST(Matrix, ProductNonSquare)
{
    Matrix a{{1, 2, 3}};          // 1x3
    Matrix b{{1}, {2}, {3}};      // 3x1
    Matrix p = a * b;             // 1x1 = 14
    EXPECT_EQ(p.rows(), 1u);
    EXPECT_EQ(p.cols(), 1u);
    EXPECT_DOUBLE_EQ(p(0, 0), 14.0);
    Matrix outer = b * a;         // 3x3
    EXPECT_EQ(outer.rows(), 3u);
    EXPECT_DOUBLE_EQ(outer(2, 2), 9.0);
}

TEST(Matrix, IdentityIsMultiplicativeNeutral)
{
    Matrix a{{1, 2}, {3, 4}};
    EXPECT_TRUE(approxEqual(a * Matrix::identity(2), a));
    EXPECT_TRUE(approxEqual(Matrix::identity(2) * a, a));
}

TEST(Matrix, Transpose)
{
    Matrix a{{1, 2, 3}, {4, 5, 6}};
    Matrix t = a.transpose();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_EQ(t(2, 1), 6.0);
    EXPECT_TRUE(approxEqual(t.transpose(), a));
}

TEST(Matrix, BlockExtractAndSet)
{
    Matrix a{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
    Matrix b = a.block(1, 1, 2, 2);
    EXPECT_TRUE(approxEqual(b, Matrix{{5, 6}, {8, 9}}));
    a.setBlock(0, 0, Matrix{{0, 0}, {0, 0}});
    EXPECT_EQ(a(0, 0), 0.0);
    EXPECT_EQ(a(1, 1), 0.0);
    EXPECT_EQ(a(2, 2), 9.0);
}

TEST(Matrix, RowAndColViews)
{
    Matrix a{{1, 2}, {3, 4}};
    EXPECT_TRUE(approxEqual(a.row(1), Matrix{{3, 4}}));
    Matrix c = a.col(0);
    EXPECT_TRUE(c.isVector());
    EXPECT_EQ(c[1], 3.0);
}

TEST(Matrix, HcatVcat)
{
    Matrix a{{1}, {2}};
    Matrix b{{3}, {4}};
    EXPECT_TRUE(approxEqual(hcat(a, b), Matrix{{1, 3}, {2, 4}}));
    EXPECT_TRUE(approxEqual(vcat(a.transpose(), b.transpose()),
                            Matrix{{1, 2}, {3, 4}}));
}

TEST(Matrix, DotAndNorm)
{
    Matrix a = Matrix::vector({3.0, 4.0});
    Matrix b = Matrix::vector({1.0, 1.0});
    EXPECT_DOUBLE_EQ(dot(a, b), 7.0);
    EXPECT_DOUBLE_EQ(norm2(a), 5.0);
}

TEST(Matrix, FrobeniusNormAndMaxAbs)
{
    Matrix a{{3, 0}, {0, -4}};
    EXPECT_DOUBLE_EQ(a.frobeniusNorm(), 5.0);
    EXPECT_DOUBLE_EQ(a.maxAbs(), 4.0);
}

TEST(Matrix, Trace)
{
    Matrix a{{1, 9}, {9, 5}};
    EXPECT_DOUBLE_EQ(a.trace(), 6.0);
}

TEST(Matrix, ComplexPromotionAndConjTranspose)
{
    Matrix a{{1, 2}, {3, 4}};
    CMatrix c = toComplex(a);
    EXPECT_EQ(c(1, 0).real(), 3.0);
    EXPECT_EQ(c(1, 0).imag(), 0.0);
    c(0, 1) = {2.0, 5.0};
    CMatrix h = conjTranspose(c);
    EXPECT_EQ(h(1, 0).real(), 2.0);
    EXPECT_EQ(h(1, 0).imag(), -5.0);
}

TEST(Matrix, ApproxEqualRespectsTolerance)
{
    Matrix a{{1.0}};
    Matrix b{{1.0 + 1e-12}};
    EXPECT_TRUE(approxEqual(a, b, 1e-9));
    EXPECT_FALSE(approxEqual(a, b, 1e-15));
    EXPECT_FALSE(approxEqual(a, Matrix(1, 2)));
}

TEST(MatrixDeath, ShapeMismatchPanics)
{
    Matrix a(2, 2);
    Matrix b(3, 3);
    EXPECT_DEATH(a + b, "shape mismatch");
    EXPECT_DEATH(a * Matrix(3, 1), "shape mismatch");
#if MIMOARCH_CHECKED
    // Element-index checking is compiled out in Release builds; shape
    // checks above stay unconditional.
    EXPECT_DEATH(a(5, 0), "out of range");
#endif
}

} // namespace
} // namespace mimoarch
