/**
 * @file
 * Parameterized property sweeps over the linear-algebra kernels:
 * LU round-trips across sizes, SVD reconstruction across shapes, and
 * DARE solutions stabilizing random stabilizable systems across
 * dimensions and seeds.
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "linalg/eig.hpp"
#include "linalg/riccati.hpp"
#include "linalg/solve.hpp"
#include "linalg/svd.hpp"

namespace mimoarch {
namespace {

Matrix
randomMatrix(size_t rows, size_t cols, Rng &rng, double scale = 1.0)
{
    Matrix m(rows, cols);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            m(r, c) = rng.normal(0.0, scale);
    return m;
}

// ---------------------------------------------------------------- LU

class LuRoundTrip : public ::testing::TestWithParam<size_t>
{};

TEST_P(LuRoundTrip, SolveRecoversSolution)
{
    const size_t n = GetParam();
    Rng rng(1000 + n);
    for (int trial = 0; trial < 5; ++trial) {
        Matrix a = randomMatrix(n, n, rng) +
            Matrix::identity(n) * 2.0; // keep well-conditioned
        Matrix x_true = randomMatrix(n, 1, rng);
        Matrix x = solve(a, a * x_true);
        EXPECT_TRUE(approxEqual(x, x_true, 1e-7))
            << "n=" << n << " trial=" << trial;
    }
}

TEST_P(LuRoundTrip, InverseTimesSelfIsIdentity)
{
    const size_t n = GetParam();
    Rng rng(2000 + n);
    Matrix a = randomMatrix(n, n, rng) + Matrix::identity(n) * 2.0;
    EXPECT_TRUE(approxEqual(a * inverse(a), Matrix::identity(n), 1e-8));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 20));

// ---------------------------------------------------------------- SVD

struct SvdShape
{
    size_t rows;
    size_t cols;
};

class SvdReconstruct : public ::testing::TestWithParam<SvdShape>
{};

TEST_P(SvdReconstruct, FactorsReproduceTheMatrix)
{
    const auto [rows, cols] = GetParam();
    Rng rng(3000 + rows * 17 + cols);
    Matrix a = randomMatrix(rows, cols, rng);
    const SvdResult r = svd(a);
    const size_t k = r.s.size();
    Matrix sigma(k, k);
    for (size_t i = 0; i < k; ++i)
        sigma(i, i) = r.s[i];
    EXPECT_TRUE(approxEqual(r.u * sigma * r.v.transpose(), a, 1e-9));
    // Singular values are non-negative and sorted.
    for (size_t i = 0; i + 1 < k; ++i) {
        EXPECT_GE(r.s[i], r.s[i + 1]);
        EXPECT_GE(r.s[i + 1], 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdReconstruct,
                         ::testing::Values(SvdShape{1, 1}, SvdShape{2, 2},
                                           SvdShape{4, 2}, SvdShape{2, 4},
                                           SvdShape{6, 6}, SvdShape{9, 3},
                                           SvdShape{3, 9}));

// --------------------------------------------------------------- DARE

struct DareCase
{
    size_t n;
    size_t m;
    uint64_t seed;
};

class DareStabilizes : public ::testing::TestWithParam<DareCase>
{};

TEST_P(DareStabilizes, SolutionStabilizesAndSatisfiesResidual)
{
    const auto [n, m, seed] = GetParam();
    Rng rng(seed);
    // Contractive-ish A plus full-rank-ish B: stabilizable w.h.p.
    Matrix a = randomMatrix(n, n, rng, 0.4);
    Matrix b = randomMatrix(n, m, rng);
    Matrix q = Matrix::identity(n);
    Matrix r = Matrix::identity(m);
    const auto res = solveDare(a, b, q, r);
    ASSERT_TRUE(res.has_value()) << "n=" << n << " m=" << m;
    EXPECT_LT(res->residual, 1e-7);
    const Matrix k = lqrGainFromDare(a, b, r, res->p);
    EXPECT_LT(spectralRadius(a - b * k), 1.0);
    // P is symmetric PSD.
    EXPECT_TRUE(approxEqual(res->p, res->p.transpose(), 1e-8));
    for (const auto &l : eigenvalues(res->p))
        EXPECT_GE(l.real(), -1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DareStabilizes,
    ::testing::Values(DareCase{2, 1, 11}, DareCase{2, 2, 12},
                      DareCase{3, 1, 13}, DareCase{4, 2, 14},
                      DareCase{4, 4, 15}, DareCase{6, 2, 16},
                      DareCase{6, 3, 17}, DareCase{8, 3, 18}));

// ----------------------------------------------------------- Lyapunov

class LyapunovHolds : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(LyapunovHolds, SolutionSatisfiesEquation)
{
    Rng rng(GetParam());
    const size_t n = 2 + rng.uniformInt(5);
    Matrix a = randomMatrix(n, n, rng, 0.3); // rho(A) < 1 w.h.p.
    if (spectralRadius(a) >= 1.0)
        GTEST_SKIP() << "random draw unstable";
    Matrix q0 = randomMatrix(n, n, rng);
    Matrix q = q0 * q0.transpose(); // PSD
    const auto x = solveDiscreteLyapunov(a, q);
    ASSERT_TRUE(x.has_value());
    EXPECT_TRUE(approxEqual(*x, a * (*x) * a.transpose() + q, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LyapunovHolds,
                         ::testing::Range<uint64_t>(100, 112));

} // namespace
} // namespace mimoarch
