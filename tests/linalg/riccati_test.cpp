/**
 * @file
 * Tests for the DARE and discrete Lyapunov solvers, including the LQR
 * gain helper and property checks on random stabilizable systems.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "linalg/eig.hpp"
#include "linalg/riccati.hpp"
#include "linalg/solve.hpp"

namespace mimoarch {
namespace {

TEST(Dare, ScalarClosedForm)
{
    // Scalar DARE: p = a^2 p - a^2 p^2 b^2/(r + b^2 p) + q.
    // With a=0.5, b=1, q=1, r=1 the positive root solves
    // p = 0.25 p - 0.25 p^2/(1+p) + 1  =>  p^2*... use numeric root.
    Matrix a{{0.5}};
    Matrix b{{1.0}};
    Matrix q{{1.0}};
    Matrix r{{1.0}};
    auto res = solveDare(a, b, q, r);
    ASSERT_TRUE(res.has_value());
    const double p = res->p(0, 0);
    // Verify the fixed point directly.
    const double rhs = 0.25 * p - 0.25 * p * p / (1.0 + p) + 1.0;
    EXPECT_NEAR(p, rhs, 1e-10);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(res->residual, 1e-8);
}

TEST(Dare, SolutionIsSymmetricPsd)
{
    Matrix a{{1.1, 0.2}, {0.0, 0.9}}; // unstable open loop
    Matrix b{{1.0}, {0.5}};
    Matrix q = Matrix::diag({1.0, 2.0});
    Matrix r{{1.0}};
    auto res = solveDare(a, b, q, r);
    ASSERT_TRUE(res.has_value());
    EXPECT_TRUE(approxEqual(res->p, res->p.transpose(), 1e-9));
    auto ev = eigenvalues(res->p);
    for (const auto &l : ev) {
        EXPECT_GE(l.real(), -1e-9);
        EXPECT_NEAR(l.imag(), 0.0, 1e-9);
    }
}

TEST(Dare, ClosedLoopIsStable)
{
    Matrix a{{1.2, 0.1}, {0.3, 1.05}}; // strongly unstable
    Matrix b{{1.0, 0.0}, {0.0, 1.0}};
    Matrix q = Matrix::identity(2);
    Matrix r = Matrix::identity(2) * 0.1;
    auto res = solveDare(a, b, q, r);
    ASSERT_TRUE(res.has_value());
    Matrix k = lqrGainFromDare(a, b, r, res->p);
    EXPECT_LT(spectralRadius(a - b * k), 1.0);
}

TEST(Dare, HigherInputWeightGivesSmallerGain)
{
    // The paper's R intuition: a more expensive input is moved less.
    Matrix a{{0.95}};
    Matrix b{{1.0}};
    Matrix q{{1.0}};
    auto cheap = solveDare(a, b, q, Matrix{{0.1}});
    auto costly = solveDare(a, b, q, Matrix{{10.0}});
    ASSERT_TRUE(cheap && costly);
    const double k_cheap =
        lqrGainFromDare(a, b, Matrix{{0.1}}, cheap->p)(0, 0);
    const double k_costly =
        lqrGainFromDare(a, b, Matrix{{10.0}}, costly->p)(0, 0);
    EXPECT_GT(std::abs(k_cheap), std::abs(k_costly));
}

TEST(Dare, RandomStabilizableSystemsProperty)
{
    Rng rng(2016);
    int solved = 0;
    for (int trial = 0; trial < 25; ++trial) {
        const size_t n = 2 + rng.uniformInt(4); // 2..5
        const size_t m = 1 + rng.uniformInt(n); // 1..n
        Matrix a(n, n);
        for (size_t i = 0; i < n; ++i)
            for (size_t j = 0; j < n; ++j)
                a(i, j) = rng.normal(0.0, 0.45);
        Matrix b(n, m);
        for (size_t i = 0; i < n; ++i)
            for (size_t j = 0; j < m; ++j)
                b(i, j) = rng.normal();
        Matrix q = Matrix::identity(n);
        Matrix r = Matrix::identity(m);
        auto res = solveDare(a, b, q, r);
        if (!res)
            continue; // not stabilizable / numerically hard — skip
        ++solved;
        EXPECT_LT(res->residual, 1e-7);
        Matrix k = lqrGainFromDare(a, b, r, res->p);
        EXPECT_LT(spectralRadius(a - b * k), 1.0);
    }
    // Random contractive-ish systems are almost always solvable.
    EXPECT_GE(solved, 20);
}

TEST(Dare, RejectsInconsistentShapes)
{
    EXPECT_DEATH(solveDare(Matrix(2, 2), Matrix(3, 1), Matrix(2, 2),
                           Matrix(1, 1)),
                 "inconsistent");
}

TEST(Lyapunov, ScalarClosedForm)
{
    // x = a x a + q  =>  x = q / (1 - a^2).
    auto x = solveDiscreteLyapunov(Matrix{{0.5}}, Matrix{{3.0}});
    ASSERT_TRUE(x.has_value());
    EXPECT_NEAR((*x)(0, 0), 3.0 / (1.0 - 0.25), 1e-10);
}

TEST(Lyapunov, SatisfiesEquation)
{
    Matrix a{{0.8, 0.2}, {-0.1, 0.6}};
    Matrix q{{1.0, 0.1}, {0.1, 2.0}};
    auto x = solveDiscreteLyapunov(a, q);
    ASSERT_TRUE(x.has_value());
    EXPECT_TRUE(approxEqual(*x, a * (*x) * a.transpose() + q, 1e-9));
}

TEST(Lyapunov, UnstableSystemRejected)
{
    EXPECT_FALSE(solveDiscreteLyapunov(Matrix{{1.01}}, Matrix{{1.0}})
                     .has_value());
}

TEST(Lyapunov, SolutionSymmetric)
{
    Matrix a{{0.3, 0.5}, {0.0, -0.7}};
    auto x = solveDiscreteLyapunov(a, Matrix::identity(2));
    ASSERT_TRUE(x.has_value());
    EXPECT_TRUE(approxEqual(*x, x->transpose(), 1e-12));
}

} // namespace
} // namespace mimoarch
