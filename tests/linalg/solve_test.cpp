/**
 * @file
 * Tests for LU decomposition, linear solves, inversion, and determinants —
 * including the complex-scalar instantiation used by frequency response.
 */

#include <gtest/gtest.h>

#include "linalg/solve.hpp"

namespace mimoarch {
namespace {

TEST(Lu, SolvesSmallSystem)
{
    Matrix a{{4, 3}, {6, 3}};
    Matrix b = Matrix::vector({10.0, 12.0});
    Matrix x = solve(a, b);
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SolveMatchesMultiplication)
{
    Matrix a{{2, 1, 1}, {1, 3, 2}, {1, 0, 0.5}};
    Matrix x_true = Matrix::vector({1.0, -2.0, 3.0});
    Matrix b = a * x_true;
    EXPECT_TRUE(approxEqual(solve(a, b), x_true, 1e-10));
}

TEST(Lu, MultiRhsSolve)
{
    Matrix a{{3, 1}, {1, 2}};
    Matrix b{{9, 1}, {8, 2}};
    Matrix x = solve(a, b);
    EXPECT_TRUE(approxEqual(a * x, b, 1e-12));
}

TEST(Lu, InverseRoundTrip)
{
    Matrix a{{1, 2, 0}, {0, 1, 3}, {4, 0, 1}};
    Matrix ai = inverse(a);
    EXPECT_TRUE(approxEqual(a * ai, Matrix::identity(3), 1e-12));
    EXPECT_TRUE(approxEqual(ai * a, Matrix::identity(3), 1e-12));
}

TEST(Lu, DeterminantKnownValues)
{
    EXPECT_NEAR(determinant(Matrix{{1, 2}, {3, 4}}), -2.0, 1e-12);
    EXPECT_NEAR(determinant(Matrix::identity(4)), 1.0, 1e-12);
    // Permutation parity: swapping two rows flips the sign.
    EXPECT_NEAR(determinant(Matrix{{0, 1}, {1, 0}}), -1.0, 1e-12);
}

TEST(Lu, SingularMatrixDetected)
{
    Matrix a{{1, 2}, {2, 4}};
    LuDecomposition<double> lu(a);
    EXPECT_FALSE(lu.ok());
    EXPECT_EQ(determinant(a), 0.0);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry)
{
    Matrix a{{0, 1}, {1, 0}};
    Matrix b = Matrix::vector({2.0, 3.0});
    Matrix x = solve(a, b);
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, IllConditionedStillAccurate)
{
    // Hilbert-like 4x4; partial pivoting should keep errors moderate.
    Matrix a(4, 4);
    for (size_t i = 0; i < 4; ++i)
        for (size_t j = 0; j < 4; ++j)
            a(i, j) = 1.0 / static_cast<double>(i + j + 1);
    Matrix x_true = Matrix::vector({1.0, 1.0, 1.0, 1.0});
    Matrix x = solve(a, a * x_true);
    EXPECT_TRUE(approxEqual(x, x_true, 1e-8));
}

TEST(LuComplex, SolvesComplexSystem)
{
    using C = std::complex<double>;
    CMatrix a(2, 2);
    a(0, 0) = C(1, 1);
    a(0, 1) = C(0, -1);
    a(1, 0) = C(2, 0);
    a(1, 1) = C(1, 1);
    CMatrix x_true(2, 1);
    x_true(0, 0) = C(1, -1);
    x_true(1, 0) = C(0, 2);
    CMatrix b = a * x_true;
    CMatrix x = solve(a, b);
    EXPECT_NEAR(std::abs(x(0, 0) - x_true(0, 0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(x(1, 0) - x_true(1, 0)), 0.0, 1e-12);
}

TEST(LuComplex, ResolventComputation)
{
    // (zI - A)^-1 at z = e^{i w} for a stable A must exist.
    Matrix a{{0.5, 0.1}, {0.0, 0.3}};
    const std::complex<double> z = std::polar(1.0, 0.7);
    CMatrix zi_a = toComplex(Matrix::identity(2)) * z - toComplex(a);
    CMatrix res = inverse(zi_a);
    CMatrix check = zi_a * res;
    EXPECT_NEAR(std::abs(check(0, 0) - 1.0), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(check(0, 1)), 0.0, 1e-12);
}

} // namespace
} // namespace mimoarch
