/**
 * @file
 * Tests for the Jacobi SVD: reconstruction, orthogonality, known singular
 * values, complex embedding, and condition numbers.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "linalg/svd.hpp"

namespace mimoarch {
namespace {

void
expectReconstructs(const Matrix &a, double tol = 1e-10)
{
    const SvdResult r = svd(a);
    const size_t n = r.s.size();
    Matrix sigma(n, n);
    for (size_t i = 0; i < n; ++i)
        sigma(i, i) = r.s[i];
    EXPECT_TRUE(approxEqual(r.u * sigma * r.v.transpose(), a, tol))
        << "SVD does not reconstruct " << a.toString();
}

TEST(Svd, DiagonalMatrix)
{
    const SvdResult r = svd(Matrix::diag({3.0, 1.0, 2.0}));
    ASSERT_EQ(r.s.size(), 3u);
    EXPECT_NEAR(r.s[0], 3.0, 1e-12);
    EXPECT_NEAR(r.s[1], 2.0, 1e-12);
    EXPECT_NEAR(r.s[2], 1.0, 1e-12);
}

TEST(Svd, SingularValuesSortedDescending)
{
    Rng rng(7);
    Matrix a(6, 4);
    for (size_t i = 0; i < 6; ++i)
        for (size_t j = 0; j < 4; ++j)
            a(i, j) = rng.normal();
    const SvdResult r = svd(a);
    for (size_t i = 0; i + 1 < r.s.size(); ++i)
        EXPECT_GE(r.s[i], r.s[i + 1]);
}

TEST(Svd, ReconstructionTallRandom)
{
    Rng rng(11);
    Matrix a(5, 3);
    for (size_t i = 0; i < 5; ++i)
        for (size_t j = 0; j < 3; ++j)
            a(i, j) = rng.normal();
    expectReconstructs(a);
}

TEST(Svd, ReconstructionWideRandom)
{
    Rng rng(13);
    Matrix a(3, 5);
    for (size_t i = 0; i < 3; ++i)
        for (size_t j = 0; j < 5; ++j)
            a(i, j) = rng.normal();
    const SvdResult r = svd(a);
    // For a wide matrix the thin factors satisfy a = u * diag(s) * v^T
    // with u 3x3 and v 5x3.
    Matrix sigma(r.s.size(), r.s.size());
    for (size_t i = 0; i < r.s.size(); ++i)
        sigma(i, i) = r.s[i];
    EXPECT_TRUE(approxEqual(r.u * sigma * r.v.transpose(), a, 1e-10));
}

TEST(Svd, VIsOrthogonal)
{
    Rng rng(3);
    Matrix a(6, 4);
    for (size_t i = 0; i < 6; ++i)
        for (size_t j = 0; j < 4; ++j)
            a(i, j) = rng.normal();
    const SvdResult r = svd(a);
    EXPECT_TRUE(approxEqual(r.v.transpose() * r.v,
                            Matrix::identity(4), 1e-10));
    EXPECT_TRUE(approxEqual(r.u.transpose() * r.u,
                            Matrix::identity(4), 1e-10));
}

TEST(Svd, RotationHasUnitSingularValues)
{
    const double t = 0.6;
    Matrix rot{{std::cos(t), -std::sin(t)}, {std::sin(t), std::cos(t)}};
    const SvdResult r = svd(rot);
    EXPECT_NEAR(r.s[0], 1.0, 1e-12);
    EXPECT_NEAR(r.s[1], 1.0, 1e-12);
}

TEST(Svd, MaxSingularValueMatchesSpectralNormBound)
{
    Matrix a{{1, 2}, {3, 4}};
    const double smax = maxSingularValue(a);
    // Known: sigma_max of [[1,2],[3,4]] = sqrt((15+sqrt(221))/2)... use
    // the exact eigenvalues of A^T A = [[10,14],[14,20]]:
    // lambda = 15 +- sqrt(25+196) = 15 +- sqrt(221).
    const double expected = std::sqrt(15.0 + std::sqrt(221.0));
    EXPECT_NEAR(smax, expected, 1e-10);
}

TEST(Svd, ComplexMaxSingularValue)
{
    // For a unitary-scaled matrix c*I, sigma_max = |c|.
    CMatrix a(2, 2);
    a(0, 0) = {3.0, 4.0};
    a(1, 1) = {3.0, 4.0};
    EXPECT_NEAR(maxSingularValue(a), 5.0, 1e-10);
}

TEST(Svd, ConditionNumber)
{
    EXPECT_NEAR(conditionNumber(Matrix::diag({10.0, 1.0})), 10.0, 1e-10);
    EXPECT_TRUE(std::isinf(conditionNumber(Matrix{{1, 1}, {1, 1}})));
}

TEST(Svd, RankOneMatrix)
{
    Matrix u = Matrix::vector({1.0, 2.0});
    Matrix v = Matrix::vector({3.0, 4.0});
    Matrix a = u * v.transpose();
    const SvdResult r = svd(a);
    EXPECT_NEAR(r.s[0], norm2(u) * norm2(v), 1e-10);
    EXPECT_NEAR(r.s[1], 0.0, 1e-10);
}

} // namespace
} // namespace mimoarch
