/**
 * @file
 * Cross-fidelity validation (DESIGN.md §13): closed-loop runs of the
 * analytic tier must stay inside the documented error envelope of the
 * cycle-level tier they were calibrated on. The gates mirror
 * bench/fig_fidelity at test scale: per-app open-loop fit error, mean
 * IPS/power deltas under the same MIMO controller, and E x D *ranking*
 * concordance across apps (the surrogate is a ranking model, not a
 * bit-accurate twin — absolute E x D deltas are allowed to be large as
 * long as it orders design points the way the simulator does).
 *
 * Tolerances here are looser than the bench's because the test runs a
 * reduced identification budget (300 sysid epochs vs the bench's 800).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/controllers.hpp"
#include "core/design_flow.hpp"
#include "core/harness.hpp"
#include "exec/design_cache.hpp"
#include "exec/plant_factory.hpp"
#include "workload/spec_suite.hpp"

namespace mimoarch {
namespace {

constexpr double kOpenLoopMeanTol = 0.45;
constexpr double kClosedLoopTol = 0.40;
constexpr double kRankTieBand = 0.20;

const std::vector<std::string> kApps = {"sjeng", "leslie3d", "namd"};

ExperimentConfig
baseConfig()
{
    ExperimentConfig cfg;
    cfg.sysidEpochsPerApp = 300;
    cfg.validationEpochsPerApp = 150;
    return cfg;
}

struct TierOut
{
    double meanIps = 0.0;
    double meanPower = 0.0;
    double exd = 0.0;
};

TierOut
runTier(const std::string &app_name, PlantFidelity fidelity)
{
    ExperimentConfig cfg = baseConfig();
    cfg.fidelity = fidelity;
    const KnobSpace knobs(false);
    const auto design =
        exec::DesignCache::instance().design(knobs, baseConfig());
    const MimoControllerDesign flow(knobs, cfg);
    auto ctrl = flow.buildController(*design);
    auto plant =
        exec::makePlant(Spec2006Suite::byName(app_name), knobs, cfg);
    DriverConfig dcfg;
    dcfg.epochs = 1200;
    dcfg.errorSkipEpochs = 100;
    dcfg.fidelity = fidelity;
    EpochDriver driver(*plant, *ctrl, dcfg);
    KnobSettings init;
    init.freqLevel = 3;
    init.cacheSetting = 1;
    const RunSummary s = driver.run(init);
    TierOut out;
    out.meanIps = s.totalTimeS > 0.0 ? s.totalInstrB / s.totalTimeS : 0.0;
    out.meanPower =
        s.totalTimeS > 0.0 ? s.totalEnergyJ / s.totalTimeS : 0.0;
    out.exd = s.exdMetric(2);
    return out;
}

double
relDelta(double a, double b)
{
    return b != 0.0 ? std::abs(a - b) / std::abs(b) : 0.0;
}

struct AppPair
{
    std::string app;
    TierOut cycle, analytic;
};

const std::vector<AppPair> &
tierRuns()
{
    static const std::vector<AppPair> runs = [] {
        std::vector<AppPair> out;
        for (const std::string &app : kApps) {
            AppPair p;
            p.app = app;
            p.cycle = runTier(app, PlantFidelity::CycleLevel);
            p.analytic = runTier(app, PlantFidelity::Analytic);
            out.push_back(p);
        }
        return out;
    }();
    return runs;
}

TEST(CrossFidelity, OpenLoopFitStaysInsideTheDocumentedEnvelope)
{
    ExperimentConfig acfg = baseConfig();
    acfg.fidelity = PlantFidelity::Analytic;
    const KnobSpace knobs(false);
    for (const std::string &app : kApps) {
        const auto model = exec::DesignCache::instance().surrogate(
            Spec2006Suite::byName(app), knobs, acfg);
        EXPECT_LE(model->fit.worstMean(), kOpenLoopMeanTol)
            << app << ": surrogate open-loop fit out of envelope";
    }
}

TEST(CrossFidelity, ClosedLoopMeansTrackTheCycleLevelTier)
{
    for (const AppPair &p : tierRuns()) {
        EXPECT_GT(p.analytic.meanIps, 0.0) << p.app;
        EXPECT_GT(p.analytic.meanPower, 0.0) << p.app;
        EXPECT_LE(relDelta(p.analytic.meanIps, p.cycle.meanIps),
                  kClosedLoopTol)
            << p.app << ": mean IPS diverged (cycle "
            << p.cycle.meanIps << ", analytic " << p.analytic.meanIps
            << ")";
        EXPECT_LE(relDelta(p.analytic.meanPower, p.cycle.meanPower),
                  kClosedLoopTol)
            << p.app << ": mean power diverged (cycle "
            << p.cycle.meanPower << ", analytic "
            << p.analytic.meanPower << ")";
    }
}

TEST(CrossFidelity, ExdRankingIsConcordantOutsideNearTies)
{
    const auto &runs = tierRuns();
    for (size_t i = 0; i < runs.size(); ++i) {
        for (size_t j = i + 1; j < runs.size(); ++j) {
            const double c = runs[i].cycle.exd - runs[j].cycle.exd;
            const double a =
                runs[i].analytic.exd - runs[j].analytic.exd;
            if (c * a >= 0.0)
                continue; // Concordant or tied.
            EXPECT_LE(relDelta(runs[i].cycle.exd, runs[j].cycle.exd),
                      kRankTieBand)
                << "tiers order " << runs[i].app << " vs "
                << runs[j].app
                << " differently on a pair that is not a near-tie";
        }
    }
}

} // namespace
} // namespace mimoarch
