/**
 * @file
 * The analytic tier under the sweep determinism contract: a surrogate
 * sweep (exec::makePlant with PlantFidelity::Analytic) must digest
 * bit-identically at 1, 2 and 8 workers, under chaos-injected retries,
 * and across a kill-then-resume from a half-complete journal — exactly
 * the guarantees tests/exec/chaos_equivalence_test.cpp proves for the
 * cycle-level tier. Surrogate noise comes from the model seed alone
 * and calibration is memoized on designFingerprint(), so neither
 * scheduling nor cache warm-up may leak into results.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/controllers.hpp"
#include "core/design_flow.hpp"
#include "core/harness.hpp"
#include "exec/design_cache.hpp"
#include "exec/plant_factory.hpp"
#include "exec/sweep.hpp"
#include "workload/spec_suite.hpp"

namespace mimoarch {
namespace {

ExperimentConfig
analyticConfig()
{
    ExperimentConfig cfg;
    cfg.sysidEpochsPerApp = 300;
    cfg.validationEpochsPerApp = 150;
    cfg.fidelity = PlantFidelity::Analytic;
    return cfg;
}

struct Digests
{
    uint64_t summary = 0;
    uint64_t trace = 0;

    bool
    operator==(const Digests &o) const
    {
        return summary == o.summary && trace == o.trace;
    }
};

const std::vector<std::pair<std::string, std::string>> kJobs = {
    {"mcf", "MIMO"},    {"mcf", "Heuristic"},
    {"povray", "MIMO"}, {"povray", "Heuristic"},
    {"namd", "MIMO"},   {"namd", "Heuristic"},
};

std::vector<exec::JobKey>
sweepKeys(size_t n)
{
    std::vector<exec::JobKey> keys;
    for (size_t i = 0; i < n; ++i)
        keys.push_back({kJobs[i].first, kJobs[i].second, 0, 0});
    return keys;
}

/** One job: a 1000-epoch analytic run digested bit-exactly. */
Digests
runJob(const exec::JobContext &ctx, const ExperimentConfig &cfg)
{
    const KnobSpace knobs(false);
    std::unique_ptr<ArchController> ctrl;
    if (ctx.key.controller == "MIMO") {
        const auto design =
            exec::DesignCache::instance().design(knobs, cfg);
        const MimoControllerDesign flow(knobs, cfg);
        ctrl = flow.buildController(*design);
    } else {
        ctrl = std::make_unique<HeuristicArchController>(
            knobs, HeuristicArchController::Tuning{}, cfg.ipsReference,
            cfg.powerReference);
    }
    ctrl->setReference(cfg.ipsReference, cfg.powerReference);

    auto plant =
        exec::makePlant(Spec2006Suite::byName(ctx.key.app), knobs, cfg);
    DriverConfig dcfg;
    dcfg.epochs = 1000;
    dcfg.errorSkipEpochs = 100;
    dcfg.fidelity = cfg.fidelity;
    dcfg.cancel = &ctx.cancel;
    EpochDriver driver(*plant, *ctrl, dcfg);
    KnobSettings init;
    init.freqLevel = 3;
    init.cacheSetting = 1;
    const RunSummary sum = driver.run(init);
    return Digests{digest(sum), digest(driver.trace())};
}

/** The sweep (first @p n jobs) under @p policy at @p workers. */
exec::SweepOutcome<Digests>
sweepAt(unsigned workers, const exec::ResilientPolicy &policy, size_t n)
{
    exec::SweepOptions opt;
    opt.jobs = workers;
    opt.resilient = policy;
    opt.resilient.retryBackoffS = 0.0; // Retry immediately in tests.
    exec::SweepRunner runner(opt);
    const ExperimentConfig cfg = analyticConfig();
    // Touch the suite and pre-calibrate the surrogates before spawning
    // workers (same lazy-static note as parallel_equivalence_test; the
    // cache itself is once_flag-guarded either way).
    (void)Spec2006Suite::all();
    const KnobSpace knobs(false);
    for (size_t i = 0; i < n; ++i)
        (void)exec::DesignCache::instance().surrogate(
            Spec2006Suite::byName(kJobs[i].first), knobs, cfg);
    return runner.mapJobs<Digests>(
        sweepKeys(n), cfg.fingerprint(),
        [&](const exec::JobContext &ctx) { return runJob(ctx, cfg); });
}

exec::ResilientPolicy
chaosPolicy()
{
    exec::ResilientPolicy policy;
    policy.maxAttempts = 8; // Outlast repeated injections.
    policy.chaos.seed = 0xF1DE;
    policy.chaos.exceptionRate = 0.25;
    policy.chaos.delayRate = 0.05;
    policy.chaos.invalidRate = 0.15;
    policy.chaos.delayMs = 2;
    return policy;
}

TEST(FidelityDeterminism, AnalyticSweepsDigestIdenticalAtAnyWidth)
{
    const size_t n = kJobs.size();
    const exec::SweepOutcome<Digests> clean =
        sweepAt(1, exec::ResilientPolicy{}, n);
    ASSERT_TRUE(clean.report.complete());
    ASSERT_EQ(clean.results.size(), n);

    for (unsigned workers : {1u, 2u, 8u}) {
        const exec::SweepOutcome<Digests> chaotic =
            sweepAt(workers, chaosPolicy(), n);
        ASSERT_TRUE(chaotic.report.complete())
            << "chaos exhausted a job's retry budget at " << workers
            << " workers";
        for (size_t i = 0; i < n; ++i) {
            EXPECT_TRUE(chaotic.results[i] == clean.results[i])
                << kJobs[i].first << "/" << kJobs[i].second << " at "
                << workers
                << " workers diverged from the clean serial run";
        }
    }
}

TEST(FidelityDeterminism, KillThenResumeDigestsIdenticalToClean)
{
    const std::string journal =
        ::testing::TempDir() + "fidelity_determinism_resume.journal";
    std::remove(journal.c_str());
    const size_t n = kJobs.size();
    const exec::SweepOutcome<Digests> clean =
        sweepAt(1, exec::ResilientPolicy{}, n);

    // The "killed" sweep: only the first half of the jobs completed
    // (and were journaled) before the process died.
    exec::ResilientPolicy policy;
    policy.resumePath = journal;
    (void)sweepAt(2, policy, n / 2);

    // The resumed sweep restores the journaled half without running it
    // and re-runs the rest — bit-identical to the clean reference.
    const exec::SweepOutcome<Digests> resumed = sweepAt(2, policy, n);
    EXPECT_EQ(resumed.report.resumedFromJournal, n / 2);
    EXPECT_EQ(resumed.report.completed, n);
    ASSERT_EQ(resumed.results.size(), n);
    for (size_t i = 0; i < n; ++i) {
        EXPECT_TRUE(resumed.results[i] == clean.results[i])
            << kJobs[i].first << "/" << kJobs[i].second
            << (i < n / 2 ? " (restored from journal)" : " (re-run)")
            << " diverged from the clean serial run";
    }
    std::remove(journal.c_str());
}

} // namespace
} // namespace mimoarch
