/**
 * @file
 * Unit tests for the analytic plant tier (DESIGN.md §13): calibration
 * determinism, seed-deterministic trajectories, floor clamping,
 * accounting, and the fidelity selector's fingerprint contract.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/experiment_config.hpp"
#include "core/knobs.hpp"
#include "plant/surrogate.hpp"
#include "workload/spec_suite.hpp"

namespace mimoarch {
namespace {

ExperimentConfig
testConfig()
{
    ExperimentConfig cfg;
    cfg.sysidEpochsPerApp = 300;
    cfg.validationEpochsPerApp = 150;
    return cfg;
}

const SurrogateModel &
cachedModel()
{
    static const SurrogateModel model = calibrateSurrogate(
        Spec2006Suite::byName("namd"), KnobSpace(false), testConfig());
    return model;
}

TEST(SurrogateCalibration, IsAPureFunctionOfItsInputs)
{
    const KnobSpace knobs(false);
    const ExperimentConfig cfg = testConfig();
    const SurrogateModel a = calibrateSurrogate(
        Spec2006Suite::byName("sjeng"), knobs, cfg);
    const SurrogateModel b = calibrateSurrogate(
        Spec2006Suite::byName("sjeng"), knobs, cfg);
    EXPECT_EQ(a.digest(), b.digest());

    // A different app calibrates to a different surface.
    const SurrogateModel c = calibrateSurrogate(
        Spec2006Suite::byName("mcf"), knobs, cfg);
    EXPECT_NE(a.digest(), c.digest());
}

TEST(SurrogateCalibration, ProducesUsableAuxiliaryFits)
{
    const SurrogateModel &m = cachedModel();
    EXPECT_EQ(m.noiseSigma.size(), kNumPlantOutputs);
    for (double s : m.noiseSigma) {
        EXPECT_TRUE(std::isfinite(s));
        EXPECT_GE(s, 0.0);
    }
    EXPECT_GT(m.ipcPerIpsOverFreq, 0.0);
    EXPECT_GT(m.energyPerPowerSecond, 0.0);
    // Energy-per-epoch coefficient should land near epochSeconds
    // (energy ~= power x epoch); an order-of-magnitude window keeps
    // this robust to per-app fit wiggle.
    EXPECT_GT(m.energyPerPowerSecond, m.epochSeconds / 10.0);
    EXPECT_LT(m.energyPerPowerSecond, m.epochSeconds * 10.0);
    EXPECT_GT(m.ipsFloor, 0.0);
    EXPECT_GT(m.powerFloor, 0.0);
    ASSERT_EQ(m.l2Coef.rows(), 3u); // 1 + 2 inputs.
    // The fit report exists for both outputs.
    EXPECT_EQ(m.fit.meanRelError.size(), kNumPlantOutputs);
}

TEST(SurrogatePlant, TrajectoriesAreSeedDeterministic)
{
    const KnobSpace knobs(false);
    auto model = std::make_shared<const SurrogateModel>(cachedModel());
    SurrogatePlant a(model, knobs, 7);
    SurrogatePlant b(model, knobs, 7);
    SurrogatePlant other(model, knobs, 8);

    KnobSettings s;
    bool any_salt_difference = false;
    for (size_t t = 0; t < 200; ++t) {
        s.freqLevel = static_cast<unsigned>(t % 16);
        s.cacheSetting = static_cast<unsigned>(t % 4);
        const Matrix &ya = a.step(s);
        const Matrix &yb = b.step(s);
        const Matrix &yo = other.step(s);
        ASSERT_EQ(ya[kOutputIps], yb[kOutputIps]) << "epoch " << t;
        ASSERT_EQ(ya[kOutputPower], yb[kOutputPower]) << "epoch " << t;
        if (ya[kOutputIps] != yo[kOutputIps])
            any_salt_difference = true;
    }
    EXPECT_EQ(a.totalEnergyJoules(), b.totalEnergyJoules());
    EXPECT_EQ(a.totalInstructionsB(), b.totalInstructionsB());
    EXPECT_EQ(a.lastL2Mpki(), b.lastL2Mpki());
    EXPECT_EQ(a.lastIpc(), b.lastIpc());
    // Distinct salts must decorrelate the noise streams.
    EXPECT_TRUE(any_salt_difference);
}

TEST(SurrogatePlant, OutputsRespectFloorsAndAuxSensorsStayFinite)
{
    const KnobSpace knobs(false);
    auto model = std::make_shared<const SurrogateModel>(cachedModel());
    SurrogatePlant plant(model, knobs, 0);
    KnobSettings lowest;
    lowest.freqLevel = 0;
    lowest.cacheSetting = 0;
    for (size_t t = 0; t < 500; ++t) {
        const Matrix &y = plant.step(lowest);
        EXPECT_GE(y[kOutputIps], model->ipsFloor);
        EXPECT_GE(y[kOutputPower], model->powerFloor);
        EXPECT_TRUE(std::isfinite(plant.lastL2Mpki()));
        EXPECT_GE(plant.lastL2Mpki(), 0.0);
        EXPECT_TRUE(std::isfinite(plant.lastIpc()));
        EXPECT_TRUE(std::isfinite(plant.lastEnergyJoules()));
        EXPECT_GT(plant.lastEnergyJoules(), 0.0);
    }
}

TEST(SurrogatePlant, AccountingAccumulatesExactly)
{
    const KnobSpace knobs(false);
    auto model = std::make_shared<const SurrogateModel>(cachedModel());
    SurrogatePlant plant(model, knobs, 3);
    double instr = 0.0, energy = 0.0, elapsed = 0.0;
    KnobSettings s;
    const size_t epochs = 128;
    for (size_t t = 0; t < epochs; ++t) {
        const Matrix &y = plant.step(s);
        instr += y[kOutputIps] * model->epochSeconds;
        energy += plant.lastEnergyJoules();
        elapsed += model->epochSeconds;
    }
    // Same-order accumulation: bit-exact. (The product form differs by
    // a few ULPs, which is why it is only NEAR.)
    EXPECT_EQ(plant.elapsedSeconds(), elapsed);
    EXPECT_NEAR(plant.elapsedSeconds(),
                static_cast<double>(epochs) * model->epochSeconds,
                1e-12);
    EXPECT_EQ(plant.totalInstructionsB(), instr);
    EXPECT_EQ(plant.totalEnergyJoules(), energy);
}

TEST(SurrogateDynamics, ResetReplaysTheExactTrajectory)
{
    const SurrogateModel &m = cachedModel();
    SurrogateDynamics dyn(m, 0x5EED);
    const Matrix u = Matrix::vector({1.0, 2.0});
    std::vector<double> first;
    for (size_t t = 0; t < 64; ++t)
        first.push_back(dyn.step(u)[kOutputIps]);
    dyn.reset(0x5EED);
    for (size_t t = 0; t < 64; ++t)
        ASSERT_EQ(dyn.step(u)[kOutputIps], first[t]) << "epoch " << t;
}

TEST(KnobSpace, ToVectorIntoMatchesToVector)
{
    for (bool rob : {false, true}) {
        const KnobSpace knobs(rob);
        Matrix out;
        for (unsigned f = 0; f < 16; ++f) {
            for (unsigned c = 0; c < 4; ++c) {
                for (unsigned r = 1; r <= 8; ++r) {
                    KnobSettings s;
                    s.freqLevel = f;
                    s.cacheSetting = c;
                    s.robPartitions = r;
                    const Matrix ref = knobs.toVector(s);
                    knobs.toVectorInto(out, s);
                    ASSERT_EQ(out.rows(), ref.rows());
                    for (size_t i = 0; i < ref.rows(); ++i)
                        ASSERT_EQ(out[i], ref[i]);
                }
            }
        }
    }
}

TEST(PlantFidelity, SelectsFingerprintButNotDesignFingerprint)
{
    ExperimentConfig cycle = testConfig();
    ExperimentConfig analytic = testConfig();
    analytic.fidelity = PlantFidelity::Analytic;
    EXPECT_NE(cycle.fingerprint(), analytic.fingerprint());
    EXPECT_EQ(cycle.designFingerprint(), analytic.designFingerprint());
    EXPECT_EQ(cycle.fingerprint(), cycle.designFingerprint());
}

} // namespace
} // namespace mimoarch
