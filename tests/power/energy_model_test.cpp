/**
 * @file
 * Power model tests: voltage scaling laws, structure-size scaling of
 * dynamic and leakage power, and bookkeeping identities.
 */

#include <gtest/gtest.h>

#include "power/energy_model.hpp"

namespace mimoarch {
namespace {

CoreCounters
sampleCounters()
{
    CoreCounters c;
    c.cycles = 2000;
    c.committed = 3000;
    c.fetched = 3500;
    c.dispatched = 3200;
    c.issued = 3100;
    c.issuedByClass[static_cast<size_t>(OpClass::IntAlu)] = 1500;
    c.issuedByClass[static_cast<size_t>(OpClass::Load)] = 800;
    c.issuedByClass[static_cast<size_t>(OpClass::Store)] = 300;
    c.issuedByClass[static_cast<size_t>(OpClass::Branch)] = 400;
    c.issuedByClass[static_cast<size_t>(OpClass::FpMul)] = 100;
    c.l1dAccesses = 1100;
    c.l1dMisses = 60;
    c.l1iAccesses = 1200;
    c.l2Accesses = 70;
    c.l2Misses = 20;
    c.memAccesses = 20;
    c.cacheWritebacks = 10;
    return c;
}

PowerEpochContext
ctxAt(double freq, double voltage)
{
    PowerEpochContext ctx;
    ctx.timeSeconds = 2000.0 / (freq * 1e9);
    ctx.freqGhz = freq;
    ctx.voltage = voltage;
    return ctx;
}

TEST(EnergyModel, TotalIsDynamicPlusLeakage)
{
    PowerCalculator pc;
    const PowerResult r = pc.epochPower(sampleCounters(), ctxAt(1.3, 1.06));
    EXPECT_NEAR(r.totalWatts, r.dynamicWatts + r.leakageWatts, 1e-12);
    EXPECT_NEAR(r.energyJoules, r.totalWatts * ctxAt(1.3, 1.06).timeSeconds,
                1e-15);
}

TEST(EnergyModel, DynamicScalesWithVoltageSquared)
{
    PowerCalculator pc;
    const CoreCounters c = sampleCounters();
    const PowerResult lo = pc.epochPower(c, ctxAt(1.0, 1.0));
    const PowerResult hi = pc.epochPower(c, ctxAt(1.0, 1.2));
    EXPECT_NEAR(hi.dynamicWatts / lo.dynamicWatts, 1.44, 1e-9);
}

TEST(EnergyModel, LeakageScalesLinearlyWithVoltage)
{
    PowerCalculator pc;
    const CoreCounters c = sampleCounters();
    const PowerResult lo = pc.epochPower(c, ctxAt(1.0, 1.0));
    const PowerResult hi = pc.epochPower(c, ctxAt(1.0, 1.2));
    EXPECT_NEAR(hi.leakageWatts / lo.leakageWatts, 1.2, 1e-9);
}

TEST(EnergyModel, SameActivityAtHigherFrequencyIsMorePower)
{
    // The same counters over a shorter wall-clock time = higher power.
    PowerCalculator pc;
    const CoreCounters c = sampleCounters();
    const PowerResult slow = pc.epochPower(c, ctxAt(1.0, 1.0));
    const PowerResult fast = pc.epochPower(c, ctxAt(2.0, 1.0));
    EXPECT_NEAR(fast.dynamicWatts / slow.dynamicWatts, 2.0, 1e-9);
}

TEST(EnergyModel, GatedStructuresLeakLess)
{
    PowerCalculator pc;
    const CoreCounters c = sampleCounters();
    PowerEpochContext full = ctxAt(1.0, 1.0);
    PowerEpochContext gated = full;
    gated.robActive = 16;
    gated.l1dWaysOn = 1;
    gated.l2WaysOn = 2;
    const PowerResult rf = pc.epochPower(c, full);
    const PowerResult rg = pc.epochPower(c, gated);
    EXPECT_LT(rg.leakageWatts, rf.leakageWatts);
    // Accesses to smaller arrays are cheaper too.
    EXPECT_LT(rg.dynamicWatts, rf.dynamicWatts);
}

TEST(EnergyModel, MemoryAccessesDominateWhenThrashing)
{
    PowerCalculator pc;
    CoreCounters quiet = sampleCounters();
    CoreCounters thrash = quiet;
    thrash.memAccesses = 500;
    thrash.l2Accesses = 600;
    thrash.l2Misses = 500;
    const PowerEpochContext ctx = ctxAt(1.0, 1.0);
    EXPECT_GT(pc.epochPower(thrash, ctx).dynamicWatts,
              1.3 * pc.epochPower(quiet, ctx).dynamicWatts);
}

TEST(EnergyModel, ExtraEnergyCharged)
{
    PowerCalculator pc;
    const CoreCounters c = sampleCounters();
    PowerEpochContext ctx = ctxAt(1.0, 1.0);
    const double base = pc.epochPower(c, ctx).dynamicWatts;
    ctx.extraNj = 1000.0;
    const double with_extra = pc.epochPower(c, ctx).dynamicWatts;
    EXPECT_NEAR(with_extra - base, 1000e-9 / ctx.timeSeconds, 1e-9);
}

TEST(EnergyModel, IdleStillBurnsClockAndLeakage)
{
    PowerCalculator pc;
    CoreCounters idle;
    idle.cycles = 2000;
    const PowerResult r = pc.epochPower(idle, ctxAt(1.0, 1.0));
    EXPECT_GT(r.dynamicWatts, 0.0); // clock tree
    EXPECT_GT(r.leakageWatts, 0.3);
}

TEST(EnergyModel, ZeroDurationIsFatal)
{
    PowerCalculator pc;
    PowerEpochContext ctx;
    ctx.timeSeconds = 0.0;
    EXPECT_EXIT(pc.epochPower(CoreCounters{}, ctx),
                testing::ExitedWithCode(1), "positive");
}

TEST(EnergyModel, A15ScaleBallpark)
{
    // At ~1.3 GHz with a realistic activity profile the model should
    // produce on the order of 1-3 W (the paper targets 2 W).
    PowerCalculator pc;
    const PowerResult r = pc.epochPower(sampleCounters(), ctxAt(1.3, 1.06));
    EXPECT_GT(r.totalWatts, 0.7);
    EXPECT_LT(r.totalWatts, 4.0);
}

} // namespace
} // namespace mimoarch
