/**
 * @file
 * FaultInjector tests: seed determinism, schedule adherence, window
 * gating, and the semantics of each actuator fault class.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "robustness/fault_injector.hpp"

namespace mimoarch {
namespace {

FaultScheduleConfig
baseConfig(double sensor_rate, double actuator_rate = 0.0)
{
    FaultScheduleConfig f;
    f.enabled = true;
    f.sensorFaultRate = sensor_rate;
    f.actuatorFaultRate = actuator_rate;
    f.seed = 12345;
    return f;
}

Matrix
cleanSample()
{
    return Matrix::vector({2.0, 2.5});
}

/** Values equal, treating NaN == NaN. */
bool
sameReading(double a, double b)
{
    if (std::isnan(a) || std::isnan(b))
        return std::isnan(a) && std::isnan(b);
    return a == b;
}

TEST(FaultInjector, SameSeedReplaysExactly)
{
    const FaultScheduleConfig cfg = baseConfig(0.1);
    FaultInjector first(cfg);
    FaultInjector second(cfg);
    for (size_t e = 0; e < 500; ++e) {
        const Matrix a = first.corruptSensors(e, cleanSample());
        const Matrix b = second.corruptSensors(e, cleanSample());
        ASSERT_TRUE(sameReading(a[0], b[0])) << "epoch " << e;
        ASSERT_TRUE(sameReading(a[1], b[1])) << "epoch " << e;
    }
    EXPECT_EQ(first.stats().sensorEvents, second.stats().sensorEvents);
    EXPECT_EQ(first.stats().corruptedSensorEpochs(),
              second.stats().corruptedSensorEpochs());
}

TEST(FaultInjector, ResetReplaysTheSchedule)
{
    FaultInjector inj(baseConfig(0.1));
    std::vector<double> pass1;
    for (size_t e = 0; e < 300; ++e)
        pass1.push_back(inj.corruptSensors(e, cleanSample())[0]);
    inj.reset();
    EXPECT_EQ(inj.stats().sensorEvents, 0ul);
    for (size_t e = 0; e < 300; ++e) {
        const double v = inj.corruptSensors(e, cleanSample())[0];
        ASSERT_TRUE(sameReading(v, pass1[e])) << "epoch " << e;
    }
}

TEST(FaultInjector, DifferentSeedsDiverge)
{
    FaultScheduleConfig cfg = baseConfig(0.2);
    FaultInjector first(cfg);
    cfg.seed = 54321;
    FaultInjector second(cfg);
    bool differed = false;
    for (size_t e = 0; e < 500 && !differed; ++e) {
        differed = !sameReading(first.corruptSensors(e, cleanSample())[0],
                                second.corruptSensors(e, cleanSample())[0]);
    }
    EXPECT_TRUE(differed);
}

TEST(FaultInjector, DisabledIsTransparent)
{
    FaultScheduleConfig cfg = baseConfig(0.5, 0.5);
    cfg.enabled = false;
    FaultInjector inj(cfg);
    KnobSettings s;
    s.freqLevel = 7;
    for (size_t e = 0; e < 200; ++e) {
        EXPECT_EQ(inj.corruptActuators(e, s).freqLevel, 7u);
        const Matrix y = inj.corruptSensors(e, cleanSample());
        EXPECT_DOUBLE_EQ(y[0], 2.0);
        EXPECT_DOUBLE_EQ(y[1], 2.5);
    }
    EXPECT_EQ(inj.stats().corruptedSensorEpochs(), 0ul);
    EXPECT_EQ(inj.stats().actuatorEvents, 0ul);
}

TEST(FaultInjector, EventCountTracksTheConfiguredRate)
{
    // NaN-only faults last one epoch, so every firing draw is an
    // event: the count is Binomial(channels * epochs, rate).
    FaultScheduleConfig cfg = baseConfig(0.05);
    cfg.weightStuckAt = cfg.weightSpike = 0.0;
    cfg.weightDropout = cfg.weightDrift = 0.0;
    FaultInjector inj(cfg);
    const size_t epochs = 2000;
    for (size_t e = 0; e < epochs; ++e)
        inj.corruptSensors(e, cleanSample());
    const double expected = 2.0 * epochs * cfg.sensorFaultRate; // = 200
    EXPECT_GT(inj.stats().sensorEvents, expected * 0.7);
    EXPECT_LT(inj.stats().sensorEvents, expected * 1.3);
    EXPECT_EQ(inj.stats().nonFinite, inj.stats().sensorEvents);
}

TEST(FaultInjector, WindowGatesWhereFaultsStart)
{
    FaultScheduleConfig cfg = baseConfig(1.0);
    cfg.weightStuckAt = cfg.weightSpike = 0.0;
    cfg.weightDropout = cfg.weightDrift = 0.0; // 1-epoch NaN faults only
    cfg.startEpoch = 100;
    cfg.endEpoch = 200;
    FaultInjector inj(cfg);
    for (size_t e = 0; e < 300; ++e) {
        const Matrix y = inj.corruptSensors(e, cleanSample());
        const bool corrupted = !std::isfinite(y[0]) || !std::isfinite(y[1]);
        if (e < 100 || e >= 200)
            EXPECT_FALSE(corrupted) << "epoch " << e;
        else
            EXPECT_TRUE(corrupted) << "epoch " << e;
    }
}

TEST(FaultInjector, DroppedTransitionHoldsTheOldLevel)
{
    FaultScheduleConfig cfg = baseConfig(0.0, 1.0);
    cfg.weightLagTransition = cfg.weightStuckCache = 0.0;
    FaultInjector inj(cfg);
    KnobSettings s;
    s.freqLevel = 5;
    // First epoch establishes lastApplied (no fault can fire yet).
    EXPECT_EQ(inj.corruptActuators(0, s).freqLevel, 5u);
    s.freqLevel = 9;
    // Every later transition is dropped: the old level persists.
    EXPECT_EQ(inj.corruptActuators(1, s).freqLevel, 5u);
    EXPECT_EQ(inj.stats().droppedTransitions, 1ul);
}

TEST(FaultInjector, LaggedTransitionPinsForLagEpochs)
{
    FaultScheduleConfig cfg = baseConfig(0.0, 1.0);
    cfg.weightDropTransition = cfg.weightStuckCache = 0.0;
    cfg.lagEpochs = 3;
    FaultInjector inj(cfg);
    KnobSettings s;
    s.freqLevel = 5;
    inj.corruptActuators(0, s);
    s.freqLevel = 12;
    for (size_t e = 1; e <= 3; ++e)
        EXPECT_EQ(inj.corruptActuators(e, s).freqLevel, 5u) << e;
    EXPECT_EQ(inj.stats().laggedTransitions, 3ul);
}

TEST(FaultInjector, StuckCachePinsWayGating)
{
    FaultScheduleConfig cfg = baseConfig(0.0, 1.0);
    cfg.weightDropTransition = cfg.weightLagTransition = 0.0;
    cfg.cacheStuckEpochs = 4;
    // Only epoch 1 may *start* a fault; the episode itself runs on
    // past the window, which is exactly what we want to observe.
    cfg.endEpoch = 2;
    FaultInjector inj(cfg);
    KnobSettings s;
    s.cacheSetting = 1;
    s.freqLevel = 5;
    inj.corruptActuators(0, s);
    s.cacheSetting = 3;
    s.freqLevel = 9;
    for (size_t e = 1; e <= 4; ++e) {
        const KnobSettings applied = inj.corruptActuators(e, s);
        EXPECT_EQ(applied.cacheSetting, 1u) << e;
        // Way gating is stuck; DVFS still obeys.
        EXPECT_EQ(applied.freqLevel, 9u) << e;
    }
    // Fault expired: the request goes through.
    EXPECT_EQ(inj.corruptActuators(5, s).cacheSetting, 3u);
    EXPECT_EQ(inj.stats().stuckCacheEpochs, 4ul);
}

TEST(FaultInjector, StuckAtFreezesTheFirstReading)
{
    FaultScheduleConfig cfg = baseConfig(1.0);
    cfg.weightNaN = cfg.weightSpike = 0.0;
    cfg.weightDropout = cfg.weightDrift = 0.0;
    cfg.stuckEpochs = 10;
    FaultInjector inj(cfg);
    Matrix first = inj.corruptSensors(0, Matrix::vector({2.0, 2.5}));
    EXPECT_DOUBLE_EQ(first[0], 2.0); // Frozen at its own value.
    // The plant moves; the reading does not.
    Matrix later = inj.corruptSensors(1, Matrix::vector({3.0, 3.5}));
    EXPECT_DOUBLE_EQ(later[0], 2.0);
    EXPECT_DOUBLE_EQ(later[1], 2.5);
}

TEST(FaultInjector, OutOfRangeRateIsFatal)
{
    FaultScheduleConfig cfg = baseConfig(1.5);
    EXPECT_EXIT(FaultInjector{cfg}, testing::ExitedWithCode(1),
                "fault rates");
}

} // namespace
} // namespace mimoarch
