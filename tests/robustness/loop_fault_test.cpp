/**
 * @file
 * End-to-end fault tests: the FaultyPlant decorator preserves the
 * truth, the epoch driver survives non-finite sensor epochs (counted,
 * settings held), and a SupervisedController rides out fault storms
 * on the real simulator that would poison a bare loop.
 */

#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "common/hash.hpp"
#include "core/harness.hpp"
#include "robustness/fault_plant.hpp"
#include "robustness/supervisor.hpp"
#include "workload/spec_suite.hpp"

namespace mimoarch {
namespace {

FaultScheduleConfig
nanStorm(double rate)
{
    FaultScheduleConfig f;
    f.enabled = true;
    f.seed = 99;
    f.sensorFaultRate = rate;
    f.weightStuckAt = f.weightSpike = 0.0;
    f.weightDropout = f.weightDrift = 0.0; // NaN/Inf only
    return f;
}

TEST(FaultyPlant, PreservesTheTruth)
{
    KnobSpace knobs(false);
    SimPlant honest(Spec2006Suite::byName("namd"), knobs);
    FaultyPlant faulty(honest, nanStorm(1.0));
    const Matrix seen = faulty.step(KnobSettings{});
    const Matrix truth = faulty.lastTrueOutputs();
    // The controller-facing reading is corrupt; the truth is not.
    EXPECT_FALSE(std::isfinite(seen[0]) && std::isfinite(seen[1]));
    EXPECT_TRUE(std::isfinite(truth[0]) && std::isfinite(truth[1]));
    EXPECT_GT(truth[kOutputIps], 0.0);
}

TEST(FaultyPlant, HonestPlantReportsEmptyTruth)
{
    // The base Plant contract: empty truth means "same as step()".
    KnobSpace knobs(false);
    SimPlant honest(Spec2006Suite::byName("namd"), knobs);
    EXPECT_TRUE(honest.lastTrueOutputs().empty() ||
                honest.lastTrueOutputs().rows() == kNumPlantOutputs);
}

TEST(EpochDriver, SkipsAndCountsNonFiniteEpochs)
{
    KnobSpace knobs(false);
    SimPlant honest(Spec2006Suite::byName("gcc"), knobs);
    FaultyPlant faulty(honest, nanStorm(0.05));
    HeuristicArchController ctrl(knobs, {}, 2.0, 2.0);
    ctrl.setReference(2.0, 2.0);
    DriverConfig dcfg;
    dcfg.epochs = 600;
    dcfg.errorSkipEpochs = 100;
    EpochDriver driver(faulty, ctrl, dcfg);
    const RunSummary sum = driver.run(KnobSettings{});
    // The run finished, counted its skips, and still produced finite
    // error statistics because they score the *true* outputs.
    EXPECT_GT(sum.nonFiniteSkips, 0ul);
    EXPECT_TRUE(std::isfinite(sum.avgIpsErrorPct));
    EXPECT_TRUE(std::isfinite(sum.avgPowerErrorPct));
}

TEST(EpochDriver, FaultFreeRunHasNoSkips)
{
    KnobSpace knobs(false);
    SimPlant plant(Spec2006Suite::byName("gcc"), knobs);
    HeuristicArchController ctrl(knobs, {}, 2.0, 2.0);
    ctrl.setReference(2.0, 2.0);
    DriverConfig dcfg;
    dcfg.epochs = 300;
    EpochDriver driver(plant, ctrl, dcfg);
    EXPECT_EQ(driver.run(KnobSettings{}).nonFiniteSkips, 0ul);
}

StateSpaceModel
syntheticPlantModel()
{
    StateSpaceModel m;
    m.a = Matrix::diag({0.3, 0.3});
    m.b = Matrix{{0.7, 0.14}, {0.45, 0.07}};
    m.c = Matrix::identity(2);
    m.d = Matrix(2, 2);
    m.qn = Matrix::identity(2) * 1e-4;
    m.rn = Matrix::identity(2) * 1e-3;
    m.inputScaling = SignalScaling::identity(2);
    m.outputScaling = SignalScaling::identity(2);
    m.inputScaling.offset = {1.25, 2.5};
    m.inputScaling.scale = {0.45, 1.1};
    m.outputScaling.offset = {1.0, 1.2};
    m.outputScaling.scale = {0.5, 0.4};
    return m;
}

std::unique_ptr<SupervisedController>
makeSupervised(const KnobSpace &knobs,
               const LoopSupervisorConfig &sup_cfg = {})
{
    LqgWeights w;
    w.outputWeights = {10.0, 10000.0};
    w.inputWeights = {1000.0, 50.0};
    auto primary = std::make_unique<MimoArchController>(
        syntheticPlantModel(), w, knobs);
    auto fallback = std::make_unique<HeuristicArchController>(
        knobs, HeuristicArchController::Tuning{}, 2.0, 2.0);
    KnobSettings safe;
    safe.freqLevel = 8;
    safe.cacheSetting = 2;
    return std::make_unique<SupervisedController>(
        std::move(primary), std::move(fallback), safe,
        SensorSanitizer::archDefaults(), sup_cfg);
}

Observation
obsOf(double ips, double power)
{
    Observation o;
    o.y = Matrix::vector({ips, power});
    o.l2Mpki = 1.0;
    o.ipc = 1.5;
    return o;
}

TEST(SupervisedController, NominalOperationMatchesBareMimo)
{
    KnobSpace knobs(false);
    auto supervised = makeSupervised(knobs);
    supervised->setReference(2.0, 2.0);
    supervised->initialize(KnobSettings{});
    for (int i = 0; i < 50; ++i) {
        // Dithered like real sensor noise; an exactly constant stream
        // would (correctly) look like a frozen sensor.
        const double dither = 0.005 * (i % 4);
        const KnobSettings s =
            supervised->update(obsOf(1.9 + dither, 2.05 - dither));
        EXPECT_LE(s.freqLevel, 15u);
    }
    EXPECT_EQ(supervised->tier(), DegradationTier::Nominal);
    EXPECT_EQ(supervised->health().fallbackEntries, 0ul);
}

TEST(SupervisedController, SurvivesNanMeasurements)
{
    KnobSpace knobs(false);
    auto supervised = makeSupervised(knobs);
    supervised->setReference(2.0, 2.0);
    supervised->initialize(KnobSettings{});
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (int i = 0; i < 100; ++i) {
        const KnobSettings s = supervised->update(
            i % 3 == 0 ? obsOf(nan, 2.0) : obsOf(1.9, 2.0));
        EXPECT_LE(s.freqLevel, 15u);
    }
    // The sanitizer absorbed every NaN before the estimator saw it.
    EXPECT_GT(supervised->sanitizer().stats().nonFinite, 0ul);
    EXPECT_EQ(supervised->health().rejectedMeasurements, 0ul);
}

TEST(SupervisedController, PersistentRunawayWalksTheLadder)
{
    KnobSpace knobs(false);
    LoopSupervisorConfig sup_cfg;
    sup_cfg.trackingWindow = 10;
    sup_cfg.maxResets = 1;
    sup_cfg.probationEpochs = 50;
    auto supervised = makeSupervised(knobs, sup_cfg);
    supervised->setReference(2.0, 2.0);
    supervised->initialize(KnobSettings{});
    // Measurements pinned far from the reference: tracking error stays
    // above the runaway cut no matter what the controller commands.
    KnobSettings safe_expected;
    safe_expected.freqLevel = 8;
    safe_expected.cacheSetting = 2;
    KnobSettings s;
    for (int i = 0; i < 400; ++i)
        s = supervised->update(obsOf(0.2, 6.0));
    EXPECT_EQ(supervised->tier(), DegradationTier::SafePin);
    EXPECT_TRUE(s == safe_expected);
    const ControllerHealth h = supervised->health();
    EXPECT_GE(h.estimatorResets, 1ul);
    EXPECT_GE(h.fallbackEntries, 1ul);
    EXPECT_GE(h.safePins, 1ul);
    EXPECT_EQ(h.tier, 3u);
}

TEST(SupervisedController, SafePinRunsAreBitwiseDeterministic)
{
    // A run that walks the whole ladder — runaway into SafePin, then a
    // recovery phase — must be exactly reproducible: the supervised
    // loop carries no hidden nondeterminism (time, address-dependent
    // state) that faulted sweeps could leak into digests.
    const auto runOnce = []() -> std::pair<uint64_t, bool> {
        KnobSpace knobs(false);
        LoopSupervisorConfig sup_cfg;
        sup_cfg.trackingWindow = 10;
        sup_cfg.maxResets = 1;
        sup_cfg.probationEpochs = 20;
        auto supervised = makeSupervised(knobs, sup_cfg);
        supervised->setReference(2.0, 2.0);
        supervised->initialize(KnobSettings{});
        Fnv64 h;
        bool pinned = false;
        for (int i = 0; i < 400; ++i) {
            const double dither = 0.01 * (i % 5);
            const Observation o = i < 250
                                      ? obsOf(0.2, 6.0)
                                      : obsOf(2.0 + dither, 2.0 - dither);
            const KnobSettings s = supervised->update(o);
            h.u64(s.freqLevel).u64(s.cacheSetting).u64(s.robPartitions);
            pinned = pinned ||
                     supervised->tier() == DegradationTier::SafePin;
        }
        const ControllerHealth health = supervised->health();
        h.u64(health.tier)
            .u64(health.estimatorResets)
            .u64(health.fallbackEntries)
            .u64(health.safePins)
            .u64(health.repromotions);
        return {h.value(), pinned};
    };
    const auto [first, first_pinned] = runOnce();
    const auto [second, second_pinned] = runOnce();
    EXPECT_TRUE(first_pinned) << "the scenario must reach SafePin";
    EXPECT_TRUE(second_pinned);
    EXPECT_EQ(first, second);
}

TEST(SupervisedController, RecoveryRepromotesAfterProbation)
{
    KnobSpace knobs(false);
    LoopSupervisorConfig sup_cfg;
    sup_cfg.trackingWindow = 10;
    sup_cfg.maxResets = 1;
    sup_cfg.probationEpochs = 20;
    sup_cfg.probationMax = 80;
    auto supervised = makeSupervised(knobs, sup_cfg);
    supervised->setReference(2.0, 2.0);
    supervised->initialize(KnobSettings{});
    // Break the loop into Fallback...
    int guard = 0;
    while (supervised->tier() != DegradationTier::Fallback &&
           ++guard < 500) {
        supervised->update(obsOf(0.2, 6.0));
    }
    ASSERT_EQ(supervised->tier(), DegradationTier::Fallback);
    // ...then feed healthy measurements until probation promotes. The
    // dither keeps the stuck-sensor detector quiet, as real sensor
    // noise would.
    guard = 0;
    while (supervised->tier() != DegradationTier::Nominal &&
           ++guard < 500) {
        const double dither = 0.01 * (guard % 5);
        supervised->update(obsOf(2.0 + dither, 2.0 - dither));
    }
    EXPECT_EQ(supervised->tier(), DegradationTier::Nominal);
    EXPECT_GE(supervised->health().repromotions, 1ul);
}

} // namespace
} // namespace mimoarch
