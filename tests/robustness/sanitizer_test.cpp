/**
 * @file
 * SensorSanitizer tests: one scenario per fault class (non-finite,
 * out-of-range, spike, stuck, dropout-shaped zeros) plus the staleness
 * budget that keeps genuine level changes from being suppressed.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "robustness/sanitizer.hpp"

namespace mimoarch {
namespace {

SensorSanitizerConfig
oneChannel()
{
    SensorSanitizerConfig cfg;
    cfg.lo = {0.1};
    cfg.hi = {8.0};
    return cfg;
}

double
feed(SensorSanitizer &s, double v)
{
    return s.sanitize(Matrix::vector({v}))[0];
}

TEST(Sanitizer, CleanStreamPassesThrough)
{
    SensorSanitizer s(oneChannel());
    for (double v : {2.0, 2.1, 1.9, 2.05, 2.0})
        EXPECT_DOUBLE_EQ(feed(s, v), v);
    EXPECT_TRUE(s.lastEpochClean());
    EXPECT_EQ(s.stats().repairs(), 0ul);
}

TEST(Sanitizer, NanHoldsLastGoodValue)
{
    SensorSanitizer s(oneChannel());
    feed(s, 2.0);
    feed(s, 2.1);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_DOUBLE_EQ(feed(s, nan), 2.1);
    EXPECT_FALSE(s.lastEpochClean());
    EXPECT_EQ(s.stats().nonFinite, 1ul);
}

TEST(Sanitizer, InfHoldsLastGoodValue)
{
    SensorSanitizer s(oneChannel());
    feed(s, 2.0);
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_DOUBLE_EQ(feed(s, inf), 2.0);
    EXPECT_DOUBLE_EQ(feed(s, -inf), 2.0);
    EXPECT_EQ(s.stats().nonFinite, 2ul);
}

TEST(Sanitizer, ColdStartNonFiniteFallsToRangeMidpoint)
{
    SensorSanitizer s(oneChannel());
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double v = feed(s, nan);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_DOUBLE_EQ(v, 0.5 * (0.1 + 8.0));
}

TEST(Sanitizer, OutOfRangeIsClamped)
{
    SensorSanitizerConfig cfg = oneChannel();
    cfg.spikeAbsTol = 1e9; // Isolate the range check.
    SensorSanitizer s(cfg);
    EXPECT_DOUBLE_EQ(feed(s, 100.0), 8.0);
    EXPECT_DOUBLE_EQ(feed(s, -3.0), 0.1);
    EXPECT_EQ(s.stats().rangeClamps, 2ul);
    EXPECT_FALSE(s.lastEpochClean());
}

TEST(Sanitizer, SpikeIsRejectedInFavourOfLastGood)
{
    SensorSanitizer s(oneChannel());
    for (double v : {2.0, 2.0, 2.0, 2.1})
        feed(s, v);
    // An 8x outlier against a median of ~2.0.
    EXPECT_DOUBLE_EQ(feed(s, 7.9), 2.1);
    EXPECT_EQ(s.stats().spikesRejected, 1ul);
    // The stream recovers; normal samples pass again.
    EXPECT_DOUBLE_EQ(feed(s, 2.05), 2.05);
}

TEST(Sanitizer, DropoutToZeroIsRepaired)
{
    // A dropout reads 0.0 — below the physical floor, so the clamp
    // plus spike rejection hold the last good value.
    SensorSanitizer s(oneChannel());
    for (double v : {2.0, 2.0, 2.0})
        feed(s, v);
    EXPECT_DOUBLE_EQ(feed(s, 0.0), 2.0);
    EXPECT_FALSE(s.lastEpochClean());
}

TEST(Sanitizer, StaleBudgetAcceptsAGenuineLevelChange)
{
    SensorSanitizerConfig cfg = oneChannel();
    cfg.staleBudget = 4;
    SensorSanitizer s(cfg);
    for (double v : {2.0, 2.0, 2.0})
        feed(s, v);
    // The operating point genuinely moves to 6.0. The first holds look
    // like spike rejection...
    for (unsigned i = 0; i < cfg.staleBudget; ++i)
        EXPECT_DOUBLE_EQ(feed(s, 6.0), 2.0) << i;
    // ...but the budget runs out and the new level is believed.
    EXPECT_DOUBLE_EQ(feed(s, 6.0), 6.0);
    EXPECT_GE(s.stats().staleAccepts, 1ul);
    // And it is now the baseline: no more rejections at 6.
    EXPECT_DOUBLE_EQ(feed(s, 6.1), 6.1);
    EXPECT_TRUE(s.lastEpochClean());
}

TEST(Sanitizer, StuckChannelIsFlagged)
{
    SensorSanitizerConfig cfg = oneChannel();
    cfg.stuckRepeats = 4;
    SensorSanitizer s(cfg);
    feed(s, 2.0);
    EXPECT_FALSE(s.anyChannelStuck());
    for (int i = 0; i < 4; ++i)
        feed(s, 2.0);
    EXPECT_TRUE(s.anyChannelStuck());
    EXPECT_GE(s.stats().stuckSuspected, 1ul);
    // A changing reading clears the flag.
    feed(s, 2.3);
    EXPECT_FALSE(s.anyChannelStuck());
}

TEST(Sanitizer, ResetForgetsHistoryButKeepsCounters)
{
    SensorSanitizer s(oneChannel());
    feed(s, 2.0);
    feed(s, std::numeric_limits<double>::quiet_NaN());
    const unsigned long repaired = s.stats().repairs();
    EXPECT_GT(repaired, 0ul);
    s.reset();
    EXPECT_EQ(s.stats().repairs(), repaired);
    // Cold start again: NaN falls to the midpoint, not to 2.0.
    const double v = feed(s, std::numeric_limits<double>::quiet_NaN());
    EXPECT_DOUBLE_EQ(v, 0.5 * (0.1 + 8.0));
}

TEST(Sanitizer, ArchDefaultsCoverBothOutputs)
{
    SensorSanitizer s(SensorSanitizer::archDefaults());
    const Matrix y = s.sanitize(Matrix::vector({2.0, 2.5}));
    EXPECT_DOUBLE_EQ(y[0], 2.0);
    EXPECT_DOUBLE_EQ(y[1], 2.5);
}

TEST(Sanitizer, MismatchedBoundsAreFatal)
{
    SensorSanitizerConfig cfg;
    cfg.lo = {0.0, 1.0};
    cfg.hi = {5.0};
    EXPECT_EXIT(SensorSanitizer{cfg}, testing::ExitedWithCode(1),
                "bounds");
}

} // namespace
} // namespace mimoarch
