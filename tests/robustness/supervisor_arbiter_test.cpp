/**
 * @file
 * The supervisor's degradation ladder under the chip arbiter: a core
 * whose supervised loop walks to SafePin must drop out of budget
 * re-targeting (the arbiter reserves its measured draw instead of
 * handing it a new operating point), the surplus must flow to the
 * healthy cores deterministically, and the whole faulted chip run must
 * stay bit-repeatable.
 *
 * Core 0's supervised stack is given an unreachable reference (50
 * BIPS at 0.05 W), so its tracking error is persistently enormous on
 * the real simulator: reset, fallback, and SafePin follow on the
 * supervisor's own schedule, with the arbiter re-partitioning above it
 * every 50 epochs the whole time.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "chip/chip.hpp"
#include "core/design_flow.hpp"
#include "core/harness.hpp"
#include "exec/design_cache.hpp"
#include "robustness/supervisor.hpp"
#include "workload/spec_suite.hpp"

namespace mimoarch {
namespace {

ExperimentConfig
chipTestConfig()
{
    ExperimentConfig cfg;
    cfg.sysidEpochsPerApp = 300;
    cfg.validationEpochsPerApp = 150;
    return cfg;
}

struct RunOutcome
{
    uint64_t digest = 0;
    std::vector<chip::ArbiterEvent> events;
    unsigned finalTier = 0;
    double finalRefIps = 0.0;
    double finalRefPower = 0.0;
};

RunOutcome
runFaultedChip()
{
    const ExperimentConfig cfg = chipTestConfig();
    const KnobSpace knobs(false);
    const auto design = exec::DesignCache::instance().design(knobs, cfg);
    const MimoControllerDesign flow(knobs, cfg);

    std::vector<chip::ChipCore> cores(2);

    // Core 0: supervised MIMO with an unreachable reference — the
    // loop can never close the error, so the ladder walks to SafePin.
    cores[0].app = "mcf";
    cores[0].plant =
        std::make_unique<SimPlant>(Spec2006Suite::byName("mcf"), knobs);
    {
        auto primary = flow.buildController(*design);
        auto fallback = std::make_unique<HeuristicArchController>(
            knobs, HeuristicArchController::Tuning{}, cfg.ipsReference,
            cfg.powerReference);
        KnobSettings safe;
        safe.freqLevel = 8;
        safe.cacheSetting = 2;
        LoopSupervisorConfig sup_cfg;
        sup_cfg.trackingWindow = 10;
        sup_cfg.maxResets = 1;
        sup_cfg.probationEpochs = 50;
        auto sup = std::make_unique<SupervisedController>(
            std::move(primary), std::move(fallback), safe,
            SensorSanitizer::archDefaults(), sup_cfg);
        sup->setReference(50.0, 0.05);
        cores[0].controller = std::move(sup);
    }

    // Core 1: a healthy bare MIMO loop at the nominal references.
    cores[1].app = "povray";
    cores[1].plant = std::make_unique<SimPlant>(
        Spec2006Suite::byName("povray"), knobs);
    {
        auto mimo = flow.buildController(*design);
        mimo->setReference(cfg.ipsReference, cfg.powerReference);
        cores[1].controller = std::move(mimo);
    }

    auto *sup =
        static_cast<SupervisedController *>(cores[0].controller.get());

    ChipConfig ccfg;
    ccfg.nCores = 2;
    ccfg.arbiterEnabled = true;
    ccfg.arbiterPeriodEpochs = 50;
    ccfg.powerEnvelopeW = 1.5 * cfg.powerReference;

    DriverConfig dcfg;
    dcfg.epochs = 600;
    dcfg.errorSkipEpochs = 100;

    chip::ChipInstance inst(std::move(cores), ccfg, dcfg);
    KnobSettings init;
    init.freqLevel = 3;
    init.cacheSetting = 1;
    const chip::ChipRunSummary sum = inst.run(init);

    RunOutcome out;
    out.digest = chip::digest(sum);
    out.events = inst.arbiterEvents();
    out.finalTier = sup->health().tier;
    const auto [ips0, power0] = sup->reference();
    out.finalRefIps = ips0;
    out.finalRefPower = power0;
    return out;
}

TEST(SupervisorUnderArbiter, SafePinnedCoreIsNeverRetargeted)
{
    const RunOutcome out = runFaultedChip();
    ASSERT_EQ(out.finalTier, 3u) << "core 0 must reach SafePin";
    ASSERT_FALSE(out.events.empty());

    // Once pinned, every arbitration round leaves core 0 alone and
    // redistributes the surplus to core 1 inside the envelope.
    const double envelope = 1.5 * chipTestConfig().powerReference;
    bool saw_pinned_round = false;
    double last_retargeted_ips = 50.0, last_retargeted_power = 0.05;
    for (const chip::ArbiterEvent &ev : out.events) {
        if (ev.alloc[0].retarget) {
            // A pre-pin round may re-target core 0; remember the refs
            // it installed so the post-run reference is checkable.
            last_retargeted_ips = ev.alloc[0].ipsTarget;
            last_retargeted_power = ev.alloc[0].powerTarget;
            EXPECT_FALSE(saw_pinned_round)
                << "core 0 was re-targeted after the supervisor "
                   "pinned it";
            continue;
        }
        saw_pinned_round = true;
        // Reserved draw + core 1's share stay inside the envelope,
        // and core 1 keeps receiving targets.
        EXPECT_GE(ev.alloc[0].powerTarget, 0.0);
        EXPECT_TRUE(ev.alloc[1].retarget);
        EXPECT_LE(ev.alloc[0].powerTarget + ev.alloc[1].powerTarget,
                  envelope * (1.0 + 1e-9));
        // The surplus the pin frees up flows to core 1: its share is
        // everything the reserve left, capped at its nominal want.
        EXPECT_GT(ev.alloc[1].powerTarget, 0.0);
    }
    EXPECT_TRUE(saw_pinned_round)
        << "no arbitration round observed the SafePin";

    // The references the core holds at the end are exactly the last
    // ones installed before the pin — the arbiter never moved them
    // afterwards.
    EXPECT_EQ(out.finalRefIps, last_retargeted_ips);
    EXPECT_EQ(out.finalRefPower, last_retargeted_power);
}

TEST(SupervisorUnderArbiter, FaultedChipRunsAreBitRepeatable)
{
    const RunOutcome a = runFaultedChip();
    const RunOutcome b = runFaultedChip();
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.finalTier, b.finalTier);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (size_t e = 0; e < a.events.size(); ++e) {
        EXPECT_EQ(a.events[e].alloc[0].retarget,
                  b.events[e].alloc[0].retarget);
        EXPECT_EQ(a.events[e].alloc[0].powerTarget,
                  b.events[e].alloc[0].powerTarget);
        EXPECT_EQ(a.events[e].alloc[1].wayMask,
                  b.events[e].alloc[1].wayMask);
    }
}

} // namespace
} // namespace mimoarch
