/**
 * @file
 * LoopSupervisor ladder tests: immediate demotion on each trigger
 * class, the reset budget, probation-based re-promotion, and the
 * backoff that stops tier thrash. SupervisedController is exercised
 * on the synthetic MIMO model from the controllers tests.
 */

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "robustness/supervisor.hpp"

namespace mimoarch {
namespace {

LoopSupervisorConfig
smallConfig()
{
    LoopSupervisorConfig cfg;
    cfg.innovationLimit = 5.0;
    cfg.innovationWindow = 3;
    cfg.trackingErrorLimit = 0.75;
    cfg.trackingWindow = 5;
    cfg.maxResets = 2;
    cfg.resetMemory = 100;
    cfg.probationEpochs = 10;
    cfg.healthyErrorLimit = 0.35;
    cfg.probationBackoff = 2.0;
    cfg.probationMax = 40;
    return cfg;
}

SupervisorSignals
healthySignals()
{
    SupervisorSignals s;
    s.innovationNorm = 0.5;
    s.stateFinite = true;
    s.relTrackingError = 0.1;
    return s;
}

SupervisorSignals
badInnovation()
{
    SupervisorSignals s = healthySignals();
    s.innovationNorm = 50.0;
    return s;
}

SupervisorSignals
runawayTracking()
{
    SupervisorSignals s = healthySignals();
    s.relTrackingError = 2.0;
    return s;
}

/** Drive to Fallback: exhaust the reset budget with bad innovations. */
void
driveToFallback(LoopSupervisor &sup)
{
    while (sup.tier() != DegradationTier::Fallback)
        sup.evaluate(badInnovation());
}

TEST(Supervisor, HealthySignalsStayNominal)
{
    LoopSupervisor sup(smallConfig());
    for (int i = 0; i < 500; ++i) {
        const SupervisorDecision d = sup.evaluate(healthySignals());
        EXPECT_EQ(d.tier, DegradationTier::Nominal);
        EXPECT_FALSE(d.resetEstimator);
    }
    EXPECT_EQ(sup.estimatorResets(), 0ul);
}

TEST(Supervisor, NonFiniteStateResetsImmediately)
{
    LoopSupervisor sup(smallConfig());
    SupervisorSignals s = healthySignals();
    s.stateFinite = false;
    const SupervisorDecision d = sup.evaluate(s);
    EXPECT_TRUE(d.resetEstimator);
    EXPECT_EQ(d.tier, DegradationTier::Reset);
    EXPECT_EQ(sup.estimatorResets(), 1ul);
}

TEST(Supervisor, InnovationStreakTriggersReset)
{
    LoopSupervisor sup(smallConfig());
    // Two bad epochs: below the window, no action.
    EXPECT_FALSE(sup.evaluate(badInnovation()).resetEstimator);
    EXPECT_FALSE(sup.evaluate(badInnovation()).resetEstimator);
    // Third consecutive: reset.
    EXPECT_TRUE(sup.evaluate(badInnovation()).resetEstimator);
    // An isolated bad innovation never trips it.
    sup.reset();
    for (int i = 0; i < 50; ++i) {
        sup.evaluate(badInnovation());
        sup.evaluate(healthySignals());
        sup.evaluate(healthySignals());
    }
    EXPECT_EQ(sup.estimatorResets(), 0ul);
}

TEST(Supervisor, ResetBudgetExhaustionFallsBack)
{
    LoopSupervisor sup(smallConfig());
    // maxResets = 2: two resets are granted, the third trigger demotes.
    unsigned evals = 0;
    while (sup.tier() != DegradationTier::Fallback && evals < 1000) {
        sup.evaluate(badInnovation());
        ++evals;
    }
    EXPECT_EQ(sup.tier(), DegradationTier::Fallback);
    EXPECT_EQ(sup.estimatorResets(), 2ul);
    EXPECT_EQ(sup.fallbackEntries(), 1ul);
}

TEST(Supervisor, TrackingRunawayEndsInSafePin)
{
    LoopSupervisor sup(smallConfig());
    // Sustained runaway: reset first, then fallback, then safe pin.
    for (int i = 0; i < 200 && sup.tier() != DegradationTier::SafePin;
         ++i) {
        sup.evaluate(runawayTracking());
    }
    EXPECT_EQ(sup.tier(), DegradationTier::SafePin);
    EXPECT_GE(sup.estimatorResets(), 1ul);
    EXPECT_EQ(sup.fallbackEntries(), 1ul);
    EXPECT_EQ(sup.safePins(), 1ul);
}

TEST(Supervisor, ProbationEarnsRepromotion)
{
    LoopSupervisor sup(smallConfig());
    driveToFallback(sup);
    // probation doubled once by the demotion backoff: 10 -> 20.
    SupervisorDecision d;
    for (int i = 0; i < 19; ++i) {
        d = sup.evaluate(healthySignals());
        EXPECT_EQ(d.tier, DegradationTier::Fallback) << i;
    }
    d = sup.evaluate(healthySignals());
    EXPECT_EQ(d.tier, DegradationTier::Nominal);
    EXPECT_TRUE(d.promoted);
    EXPECT_TRUE(d.resetEstimator);
    EXPECT_EQ(sup.repromotions(), 1ul);
}

TEST(Supervisor, UnhealthyEpochsRestartProbation)
{
    LoopSupervisor sup(smallConfig());
    driveToFallback(sup);
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 15; ++i)
            sup.evaluate(healthySignals());
        // One unhealthy epoch voids the accumulated streak.
        SupervisorSignals bad = healthySignals();
        bad.relTrackingError = 0.5; // above healthyErrorLimit
        sup.evaluate(bad);
    }
    EXPECT_EQ(sup.tier(), DegradationTier::Fallback);
    EXPECT_EQ(sup.repromotions(), 0ul);
}

TEST(Supervisor, BackoffLengthensEachQuarantine)
{
    LoopSupervisor sup(smallConfig());
    driveToFallback(sup); // probation now 20
    unsigned first = 0;
    while (sup.tier() == DegradationTier::Fallback) {
        sup.evaluate(healthySignals());
        ++first;
    }
    // Fault returns: demoted again, probation doubles to 40.
    driveToFallback(sup);
    unsigned second = 0;
    while (sup.tier() == DegradationTier::Fallback) {
        sup.evaluate(healthySignals());
        ++second;
    }
    EXPECT_GT(second, first);
    EXPECT_EQ(sup.repromotions(), 2ul);
}

TEST(Supervisor, BackoffSaturatesAtProbationMax)
{
    // smallConfig: probation 10, backoff x2, probationMax 40. Repeated
    // fault/recover cycles must clamp the quarantine at probationMax
    // instead of growing it without bound.
    LoopSupervisor sup(smallConfig());
    std::vector<unsigned> quarantines;
    for (int cycle = 0; cycle < 8; ++cycle) {
        driveToFallback(sup);
        unsigned len = 0;
        while (sup.tier() == DegradationTier::Fallback && len < 10000) {
            sup.evaluate(healthySignals());
            ++len;
        }
        ASSERT_EQ(sup.tier(), DegradationTier::Nominal) << cycle;
        quarantines.push_back(len);
    }
    EXPECT_EQ(quarantines.front(), 20u); // One doubling: 10 -> 20.
    for (size_t i = 1; i < quarantines.size(); ++i) {
        EXPECT_EQ(quarantines[i], smallConfig().probationMax)
            << "cycle " << i;
    }
    EXPECT_EQ(sup.repromotions(), 8ul);
}

TEST(Supervisor, SafePinServesTimeThenReturnsToFallback)
{
    LoopSupervisor sup(smallConfig());
    for (int i = 0; i < 200 && sup.tier() != DegradationTier::SafePin;
         ++i) {
        sup.evaluate(runawayTracking());
    }
    ASSERT_EQ(sup.tier(), DegradationTier::SafePin);
    // Quiet sensors: time-served probation promotes back to Fallback.
    int epochs = 0;
    while (sup.tier() == DegradationTier::SafePin && epochs < 1000) {
        sup.evaluate(healthySignals());
        ++epochs;
    }
    EXPECT_EQ(sup.tier(), DegradationTier::Fallback);
    // Noisy sensors would have stalled the clock.
    EXPECT_GE(epochs, 10);
}

TEST(Supervisor, LongStuckSensorFallsBack)
{
    LoopSupervisorConfig cfg = smallConfig();
    cfg.stuckWindow = 8;
    LoopSupervisor sup(cfg);
    SupervisorSignals s = healthySignals();
    s.sensorStuck = true;
    // Shorter-than-window stuck episodes are tolerated...
    for (int episode = 0; episode < 5; ++episode) {
        for (int i = 0; i < 7; ++i)
            sup.evaluate(s);
        sup.evaluate(healthySignals());
    }
    EXPECT_EQ(sup.tier(), DegradationTier::Nominal);
    // ...a persistent freeze is not.
    SupervisorDecision d;
    for (int i = 0; i < 8; ++i)
        d = sup.evaluate(s);
    EXPECT_EQ(d.tier, DegradationTier::Fallback);
    EXPECT_TRUE(d.enteredFallback);
}

TEST(Supervisor, StuckSensorBlocksPromotion)
{
    LoopSupervisor sup(smallConfig());
    driveToFallback(sup);
    SupervisorSignals s = healthySignals();
    s.sensorStuck = true;
    for (int i = 0; i < 200; ++i)
        sup.evaluate(s);
    EXPECT_EQ(sup.tier(), DegradationTier::Fallback);
}

} // namespace
} // namespace mimoarch
