/**
 * @file
 * Branch predictor tests: learning biased branches, patterns via global
 * history, chooser behaviour, and statistics.
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "sim/bpred.hpp"

namespace mimoarch {
namespace {

TEST(BranchPredictor, LearnsAlwaysTakenBranch)
{
    BranchPredictor bp;
    const uint64_t pc = 0x400100;
    for (int i = 0; i < 16; ++i)
        bp.predictAndUpdate(pc, true);
    EXPECT_TRUE(bp.predict(pc));
}

TEST(BranchPredictor, LearnsAlwaysNotTakenBranch)
{
    BranchPredictor bp;
    const uint64_t pc = 0x400200;
    for (int i = 0; i < 16; ++i)
        bp.predictAndUpdate(pc, false);
    EXPECT_FALSE(bp.predict(pc));
}

TEST(BranchPredictor, BiasedBranchLowMispredictRate)
{
    BranchPredictor bp;
    Rng rng(5);
    const uint64_t pc = 0x400300;
    uint64_t wrong = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const bool taken = rng.bernoulli(0.95);
        if (!bp.predictAndUpdate(pc, taken))
            ++wrong;
    }
    // A 2-bit counter should approach the 5% oracle rate.
    EXPECT_LT(static_cast<double>(wrong) / n, 0.12);
}

TEST(BranchPredictor, GshareLearnsAlternatingPattern)
{
    // T,N,T,N... is hopeless for the bimodal table but trivial for
    // gshare with global history; the tournament must converge on it.
    BranchPredictor bp;
    const uint64_t pc = 0x400400;
    // Warm up.
    for (int i = 0; i < 512; ++i)
        bp.predictAndUpdate(pc, i % 2 == 0);
    uint64_t wrong = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        if (!bp.predictAndUpdate(pc, (i + 512) % 2 == 0))
            ++wrong;
    }
    EXPECT_LT(static_cast<double>(wrong) / n, 0.05);
}

TEST(BranchPredictor, LoopPatternLearned)
{
    // 7 taken then 1 not-taken (8-iteration loop): gshare should nail it
    // once the history register distinguishes the loop exit.
    BranchPredictor bp;
    const uint64_t pc = 0x400500;
    for (int i = 0; i < 4096; ++i)
        bp.predictAndUpdate(pc, i % 8 != 7);
    uint64_t wrong = 0;
    const int n = 4096;
    for (int i = 0; i < n; ++i) {
        if (!bp.predictAndUpdate(pc, i % 8 != 7))
            ++wrong;
    }
    EXPECT_LT(static_cast<double>(wrong) / n, 0.05);
}

TEST(BranchPredictor, RandomBranchNearCoinFlip)
{
    BranchPredictor bp;
    Rng rng(77);
    const uint64_t pc = 0x400600;
    uint64_t wrong = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (!bp.predictAndUpdate(pc, rng.bernoulli(0.5)))
            ++wrong;
    }
    const double rate = static_cast<double>(wrong) / n;
    EXPECT_GT(rate, 0.40);
    EXPECT_LT(rate, 0.60);
}

TEST(BranchPredictor, StatsCount)
{
    BranchPredictor bp;
    for (int i = 0; i < 10; ++i)
        bp.predictAndUpdate(0x400700, true);
    EXPECT_EQ(bp.lookups(), 10u);
    EXPECT_LE(bp.mispredicts(), 2u); // initial counters are weak-NT
}

TEST(BranchPredictor, ResetClearsState)
{
    BranchPredictor bp;
    for (int i = 0; i < 100; ++i)
        bp.predictAndUpdate(0x400800, true);
    bp.reset();
    EXPECT_EQ(bp.lookups(), 0u);
    EXPECT_EQ(bp.mispredicts(), 0u);
    EXPECT_FALSE(bp.predict(0x400800)); // back to weakly not-taken
}

TEST(BranchPredictor, DistinctBranchesDoNotAliasBadly)
{
    BranchPredictor bp;
    // Two branches with opposite bias in different table slots.
    const uint64_t pc_a = 0x400900;
    const uint64_t pc_b = 0x440904; // different index
    for (int i = 0; i < 64; ++i) {
        bp.predictAndUpdate(pc_a, true);
        bp.predictAndUpdate(pc_b, false);
    }
    EXPECT_TRUE(bp.predict(pc_a));
    EXPECT_FALSE(bp.predict(pc_b));
}

TEST(BranchPredictor, ConfigValidation)
{
    BranchPredictorConfig bad;
    bad.tableBits = 30;
    EXPECT_EXIT(BranchPredictor bp(bad), testing::ExitedWithCode(1),
                "tableBits");
}

} // namespace
} // namespace mimoarch
