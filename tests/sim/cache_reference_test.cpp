/**
 * @file
 * Differential test for the fused hit+victim scan in Cache::access()
 * and Cache::prefetch(): a deliberately naive reference cache (separate
 * hit pass, then a separate victim pass) replays the same randomized
 * address streams — with way-gating changes and prefetches interleaved
 * — and every statistic, LRU decision, and residency answer must agree.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "sim/cache.hpp"

namespace mimoarch {
namespace {

/** Two-pass LRU model mirroring the documented replacement policy:
 *  first invalid way, else the lowest-LRU way (lowest index on ties). */
class NaiveCache
{
  public:
    explicit NaiveCache(const CacheConfig &config)
        : config_(config), enabledWays_(config.ways),
          lines_(size_t{config.sets()} * config.ways)
    {
    }

    bool
    access(uint64_t addr, bool is_write)
    {
        ++stats_.accesses;
        ++lruClock_;
        const uint32_t set = setIndex(addr);
        const uint64_t tag = tagOf(addr);
        // Pass 1: hit check.
        for (uint32_t w = 0; w < enabledWays_; ++w) {
            Line &l = line(set, w);
            if (l.valid && l.tag == tag) {
                l.lru = lruClock_;
                l.dirty = l.dirty || is_write;
                return true;
            }
        }
        // Pass 2: victim selection.
        ++stats_.misses;
        Line &v = line(set, pickVictim(set));
        if (v.valid && v.dirty)
            ++stats_.writebacks;
        v = Line{tag, lruClock_, true, is_write};
        return false;
    }

    void
    prefetch(uint64_t addr)
    {
        const uint32_t set = setIndex(addr);
        const uint64_t tag = tagOf(addr);
        for (uint32_t w = 0; w < enabledWays_; ++w) {
            const Line &l = line(set, w);
            if (l.valid && l.tag == tag)
                return; // present: no state change at all
        }
        ++lruClock_;
        Line &v = line(set, pickVictim(set));
        if (v.valid && v.dirty)
            ++stats_.writebacks;
        v = Line{tag, lruClock_, true, false};
    }

    bool
    contains(uint64_t addr) const
    {
        const uint32_t set = setIndex(addr);
        const uint64_t tag = tagOf(addr);
        for (uint32_t w = 0; w < enabledWays_; ++w) {
            const Line &l = line(set, w);
            if (l.valid && l.tag == tag)
                return true;
        }
        return false;
    }

    uint64_t
    setEnabledWays(uint32_t ways)
    {
        uint64_t flushed_dirty = 0;
        for (uint32_t set = 0; ways < enabledWays_ && set < config_.sets();
             ++set) {
            for (uint32_t w = ways; w < enabledWays_; ++w) {
                Line &l = line(set, w);
                if (l.valid) {
                    ++stats_.gatingFlushes;
                    if (l.dirty) {
                        ++flushed_dirty;
                        ++stats_.writebacks;
                    }
                    l = Line{};
                }
            }
        }
        enabledWays_ = ways;
        return flushed_dirty;
    }

    const CacheStats &stats() const { return stats_; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint32_t lru = 0;
        bool valid = false;
        bool dirty = false;
    };

    uint32_t
    pickVictim(uint32_t set) const
    {
        for (uint32_t w = 0; w < enabledWays_; ++w)
            if (!lines_[size_t{set} * config_.ways + w].valid)
                return w;
        uint32_t victim = 0;
        uint32_t best = UINT32_MAX;
        for (uint32_t w = 0; w < enabledWays_; ++w) {
            const Line &l = lines_[size_t{set} * config_.ways + w];
            if (l.lru < best) {
                best = l.lru;
                victim = w;
            }
        }
        return victim;
    }

    Line &
    line(uint32_t set, uint32_t way)
    {
        return lines_[size_t{set} * config_.ways + way];
    }
    const Line &
    line(uint32_t set, uint32_t way) const
    {
        return lines_[size_t{set} * config_.ways + way];
    }

    uint32_t
    setIndex(uint64_t addr) const
    {
        return static_cast<uint32_t>(addr / config_.lineBytes) %
            config_.sets();
    }

    uint64_t
    tagOf(uint64_t addr) const
    {
        return addr / (uint64_t{config_.lineBytes} * config_.sets());
    }

    CacheConfig config_;
    uint32_t enabledWays_;
    uint32_t lruClock_ = 0;
    std::vector<Line> lines_;
    CacheStats stats_;
};

void
expectStatsEqual(const CacheStats &a, const CacheStats &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.writebacks, b.writebacks);
    EXPECT_EQ(a.gatingFlushes, b.gatingFlushes);
}

CacheConfig
smallConfig()
{
    CacheConfig cfg;
    cfg.sizeBytes = 4 * 1024; // 16 sets x 4 ways x 64 B: collisions galore
    cfg.ways = 4;
    cfg.lineBytes = 64;
    return cfg;
}

TEST(CacheReferenceTest, RandomStreamMatchesNaiveModel)
{
    const CacheConfig cfg = smallConfig();
    Cache fused(cfg);
    NaiveCache naive(cfg);
    std::mt19937_64 rng(7);
    // A 256-line footprint over a 64-line cache keeps hits, misses,
    // evictions and dirty writebacks all frequent.
    std::uniform_int_distribution<uint64_t> addr(0, 16 * 1024 - 1);
    for (int i = 0; i < 50000; ++i) {
        const uint64_t a = addr(rng);
        const bool is_write = (rng() & 3) == 0;
        ASSERT_EQ(fused.access(a, is_write), naive.access(a, is_write))
            << "step " << i << " addr " << a;
    }
    expectStatsEqual(fused.stats(), naive.stats());
    // Residency must agree line by line across the whole footprint.
    for (uint64_t a = 0; a < 16 * 1024; a += cfg.lineBytes)
        ASSERT_EQ(fused.contains(a), naive.contains(a)) << "addr " << a;
}

TEST(CacheReferenceTest, PrefetchStreamMatchesNaiveModel)
{
    const CacheConfig cfg = smallConfig();
    Cache fused(cfg);
    NaiveCache naive(cfg);
    std::mt19937_64 rng(11);
    std::uniform_int_distribution<uint64_t> addr(0, 16 * 1024 - 1);
    for (int i = 0; i < 50000; ++i) {
        const uint64_t a = addr(rng);
        switch (rng() % 4) {
        case 0:
            fused.prefetch(a);
            naive.prefetch(a);
            break;
        default: {
            const bool is_write = (rng() & 3) == 0;
            ASSERT_EQ(fused.access(a, is_write),
                      naive.access(a, is_write))
                << "step " << i;
            break;
        }
        }
    }
    // Prefetches do not count as accesses/misses, so equal stats here
    // also pin that the fused prefetch stays statistics-neutral.
    expectStatsEqual(fused.stats(), naive.stats());
    for (uint64_t a = 0; a < 16 * 1024; a += cfg.lineBytes)
        ASSERT_EQ(fused.contains(a), naive.contains(a)) << "addr " << a;
}

TEST(CacheReferenceTest, WayGatingChangesMatchNaiveModel)
{
    const CacheConfig cfg = smallConfig();
    Cache fused(cfg);
    NaiveCache naive(cfg);
    std::mt19937_64 rng(13);
    std::uniform_int_distribution<uint64_t> addr(0, 16 * 1024 - 1);
    const uint32_t way_schedule[] = {4, 2, 1, 3, 4, 1, 4};
    for (uint32_t ways : way_schedule) {
        EXPECT_EQ(fused.setEnabledWays(ways),
                  naive.setEnabledWays(ways));
        for (int i = 0; i < 5000; ++i) {
            const uint64_t a = addr(rng);
            const bool is_write = (rng() & 1) == 0;
            ASSERT_EQ(fused.access(a, is_write),
                      naive.access(a, is_write))
                << "ways " << ways << " step " << i;
        }
        expectStatsEqual(fused.stats(), naive.stats());
    }
    for (uint64_t a = 0; a < 16 * 1024; a += cfg.lineBytes)
        ASSERT_EQ(fused.contains(a), naive.contains(a)) << "addr " << a;
}

} // namespace
} // namespace mimoarch
