/**
 * @file
 * Cache tests: hit/miss behaviour, LRU replacement, write-back dirty
 * tracking, way gating, and geometry validation.
 */

#include <gtest/gtest.h>

#include "sim/cache.hpp"

namespace mimoarch {
namespace {

CacheConfig
tinyCache()
{
    // 4 sets x 2 ways x 64B lines = 512B.
    return CacheConfig{512, 2, 64};
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(tinyCache());
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x103F, false)); // same line
    EXPECT_EQ(c.stats().accesses, 3u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, SetConflictEvictsLru)
{
    Cache c(tinyCache());
    // Three lines mapping to the same set (set stride = 4*64 = 256B).
    const uint64_t a = 0x0000, b = 0x0100 * 4, d = 0x0100 * 8;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);       // a is now MRU
    c.access(d, false);       // evicts b (LRU)
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
    EXPECT_TRUE(c.contains(d));
}

TEST(Cache, WritebackOnDirtyEviction)
{
    Cache c(tinyCache());
    const uint64_t a = 0x0000, b = 0x0400, d = 0x0800;
    c.access(a, true);  // dirty
    c.access(b, false); // clean
    c.access(a, false); // refresh a
    c.access(d, false); // evicts clean b: no writeback
    EXPECT_EQ(c.stats().writebacks, 0u);
    c.access(b, false); // evicts dirty a (LRU is a after d's fill? no:
                        // order now b -> evicts LRU among {a,d} = a)
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, DirtyBitSetOnWriteHit)
{
    Cache c(tinyCache());
    const uint64_t a = 0x0000, b = 0x0400, d = 0x0800;
    c.access(a, false); // clean fill
    c.access(a, true);  // write hit -> dirty
    c.access(b, false);
    c.access(a, false);
    c.access(d, false); // evicts b (clean)
    c.access(b, false); // evicts a (dirty) -> writeback
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, WayGatingFlushesAndRestricts)
{
    Cache c(tinyCache());
    const uint64_t a = 0x0000, b = 0x0400;
    c.access(a, true);
    c.access(b, false);
    const uint64_t dirty = c.setEnabledWays(1);
    // One of the two lines was in way 1 and got flushed.
    EXPECT_EQ(c.stats().gatingFlushes, 1u);
    EXPECT_EQ(c.enabledWays(), 1u);
    EXPECT_LE(dirty, 1u);
    EXPECT_EQ(c.effectiveSizeBytes(), 256u);
    // With 1 way, two conflicting lines thrash.
    c.access(a, false);
    c.access(b, false);
    EXPECT_FALSE(c.contains(a));
}

TEST(Cache, GatingCountsDirtyWritebacks)
{
    Cache c(tinyCache());
    // Fill both ways of one set with dirty lines.
    c.access(0x0000, true);
    c.access(0x0400, true);
    const uint64_t before = c.stats().writebacks;
    const uint64_t dirty = c.setEnabledWays(1);
    EXPECT_EQ(dirty, 1u); // the flushed way held one dirty line
    EXPECT_EQ(c.stats().writebacks, before + 1);
}

TEST(Cache, ReenablingWaysKeepsCorrectness)
{
    Cache c(tinyCache());
    c.setEnabledWays(1);
    c.access(0x0000, false);
    c.setEnabledWays(2);
    EXPECT_TRUE(c.contains(0x0000));
    // New fills can now use both ways.
    c.access(0x0400, false);
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_TRUE(c.contains(0x0400));
}

TEST(Cache, MissRateStat)
{
    Cache c(tinyCache());
    c.access(0x0000, false);
    c.access(0x0000, false);
    c.access(0x0000, false);
    c.access(0x0000, false);
    EXPECT_DOUBLE_EQ(c.stats().missRate(), 0.25);
}

TEST(Cache, ResetClearsLinesAndStats)
{
    Cache c(tinyCache());
    c.access(0x0000, true);
    c.reset();
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_FALSE(c.contains(0x0000));
}

TEST(Cache, LargeRealisticGeometry)
{
    // The paper's L2: 256KB, 8-way, 64B lines -> 512 sets.
    Cache c(CacheConfig{256 * 1024, 8, 64});
    EXPECT_EQ(c.config().sets(), 512u);
    // Sequential fill of the full capacity then re-walk: all hits.
    for (uint64_t addr = 0; addr < 256 * 1024; addr += 64)
        c.access(addr, false);
    const uint64_t misses_after_fill = c.stats().misses;
    for (uint64_t addr = 0; addr < 256 * 1024; addr += 64)
        c.access(addr, false);
    EXPECT_EQ(c.stats().misses, misses_after_fill);
}

TEST(Cache, InvalidGeometryIsFatal)
{
    EXPECT_EXIT(Cache c(CacheConfig{1000, 3, 64}),
                testing::ExitedWithCode(1), "");
    EXPECT_EXIT(Cache c(CacheConfig{512, 0, 64}),
                testing::ExitedWithCode(1), "");
}

TEST(Cache, InvalidWayGatingIsFatal)
{
    Cache c(tinyCache());
    EXPECT_EXIT(c.setEnabledWays(0), testing::ExitedWithCode(1), "");
    EXPECT_EXIT(c.setEnabledWays(3), testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace mimoarch
