/**
 * @file
 * Core pipeline tests using hand-built instruction sources: issue-width
 * limits, dependency serialization, memory stalls, branch mispredict
 * penalties, ROB resizing, and counter consistency.
 */

#include <gtest/gtest.h>

#include "sim/core.hpp"

namespace mimoarch {
namespace {

/** Emits the same micro-op forever. */
class RepeatSource : public InstructionSource
{
  public:
    explicit RepeatSource(MicroOp op) : op_(op) {}

    MicroOp
    next() override
    {
        MicroOp op = op_;
        op.pc = 0x400000 + (pc_ += 4) % 4096;
        return op;
    }

  private:
    MicroOp op_;
    uint64_t pc_ = 0;
};

/** Cycles through a fixed vector of micro-ops. */
class LoopSource : public InstructionSource
{
  public:
    explicit LoopSource(std::vector<MicroOp> ops) : ops_(std::move(ops)) {}

    MicroOp
    next() override
    {
        MicroOp op = ops_[idx_ % ops_.size()];
        op.pc = 0x400000 + (idx_ * 4) % 4096;
        ++idx_;
        return op;
    }

  private:
    std::vector<MicroOp> ops_;
    size_t idx_ = 0;
};

MicroOp
alu(uint16_t dep = 0)
{
    MicroOp op;
    op.cls = OpClass::IntAlu;
    op.srcDist0 = dep;
    return op;
}

TEST(Core, IndependentAluOpsReachIssueWidth)
{
    RepeatSource src(alu());
    MemoryHierarchy mem;
    Core core(CoreConfig{}, &src, &mem);
    core.run(20000, 1.0); // warm the I-cache
    core.resetCounters();
    core.run(3000, 1.0);
    // Ideal IPC for independent 1-cycle ALU ops is ~min(width, aluPorts)
    // = 2 with the default 2 ALU ports.
    EXPECT_GT(core.counters().ipc(), 1.8);
    EXPECT_LE(core.counters().ipc(), 2.05);
}

TEST(Core, SerialDependencyChainLimitsIpcToOne)
{
    RepeatSource src(alu(1)); // each op depends on the previous
    MemoryHierarchy mem;
    Core core(CoreConfig{}, &src, &mem);
    core.run(20000, 1.0);
    core.resetCounters();
    core.run(3000, 1.0);
    EXPECT_GT(core.counters().ipc(), 0.85);
    EXPECT_LE(core.counters().ipc(), 1.05);
}

TEST(Core, LongerDependencyDistanceRaisesIpc)
{
    const auto ipc_for = [](uint16_t dist) {
        RepeatSource src(alu(dist));
        MemoryHierarchy mem;
        Core core(CoreConfig{}, &src, &mem);
        core.run(20000, 1.0);
        core.resetCounters();
        core.run(3000, 1.0);
        return core.counters().ipc();
    };
    EXPECT_LT(ipc_for(1), ipc_for(2));
    EXPECT_LE(ipc_for(2), ipc_for(4) + 0.05);
}

TEST(Core, MulDivPortSerializesMultiplies)
{
    MicroOp mul;
    mul.cls = OpClass::IntMul;
    RepeatSource src(mul);
    MemoryHierarchy mem;
    Core core(CoreConfig{}, &src, &mem);
    core.run(20000, 1.0);
    core.resetCounters();
    core.run(3000, 1.0);
    // One mul/div port, pipelined 1/cycle issue -> IPC ~<= 1.
    EXPECT_LE(core.counters().ipc(), 1.05);
}

TEST(Core, CacheMissLoadsThrottleIpc)
{
    // Loads striding through a huge region: every line is a miss.
    std::vector<MicroOp> ops;
    for (int i = 0; i < 64; ++i) {
        MicroOp ld;
        ld.cls = OpClass::Load;
        ld.srcDist0 = 1; // dependent on previous -> serialized misses
        ld.addr = static_cast<uint64_t>(i) * 1024 * 1024;
        ops.push_back(ld);
    }
    LoopSource src(ops);
    MemoryHierarchy mem;
    Core core(CoreConfig{}, &src, &mem);
    core.run(20000, 2.0);
    EXPECT_LT(core.counters().ipc(), 0.05);
    EXPECT_GT(core.counters().l1dMisses, 0u);
    EXPECT_GT(core.counters().memAccesses, 0u);
}

TEST(Core, L1HitLoadsKeepHighIpc)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 16; ++i) {
        MicroOp ld;
        ld.cls = OpClass::Load;
        ld.addr = static_cast<uint64_t>(i) * 64; // 1KB hot set
        ops.push_back(ld);
        ops.push_back(alu());
        ops.push_back(alu());
    }
    LoopSource src(ops);
    MemoryHierarchy mem;
    Core core(CoreConfig{}, &src, &mem);
    core.run(20000, 1.0);
    core.resetCounters();
    core.run(5000, 1.0);
    EXPECT_GT(core.counters().ipc(), 1.5);
}

TEST(Core, MispredictsReduceIpc)
{
    // Branches with a random outcome vs always-taken.
    const auto ipc_for = [](bool random) {
        std::vector<MicroOp> ops;
        for (int i = 0; i < 97; ++i) {
            MicroOp op;
            if (i % 5 == 0) {
                op.cls = OpClass::Branch;
                op.taken = random ? ((i * 2654435761u) >> 13) % 2 : true;
                op.pc = 0x400000 + static_cast<uint64_t>(i % 7) * 64;
            } else {
                op = MicroOp{};
            }
            ops.push_back(op);
        }
        LoopSource src(ops);
        MemoryHierarchy mem;
        Core core(CoreConfig{}, &src, &mem);
        core.run(20000, 1.0);
        core.resetCounters();
        core.run(10000, 1.0);
        return core.counters().ipc();
    };
    EXPECT_LT(ipc_for(true) * 1.2, ipc_for(false));
}

TEST(Core, SmallerRobLowersMemoryLevelParallelism)
{
    // Independent missing loads: a big ROB overlaps many misses.
    const auto ipc_for = [](unsigned rob) {
        std::vector<MicroOp> ops;
        for (int i = 0; i < 128; ++i) {
            MicroOp ld;
            ld.cls = OpClass::Load;
            ld.addr = static_cast<uint64_t>(i * 7919) * 4096;
            ops.push_back(ld);
            ops.push_back(alu());
        }
        LoopSource src(ops);
        MemoryHierarchy mem;
        Core core(CoreConfig{}, &src, &mem);
        core.setRobSize(rob);
        core.run(30000, 2.0);
        return core.counters().ipc();
    };
    EXPECT_GT(ipc_for(128), 1.3 * ipc_for(16));
}

TEST(Core, RobResizeValidation)
{
    RepeatSource src(alu());
    MemoryHierarchy mem;
    Core core(CoreConfig{}, &src, &mem);
    EXPECT_EXIT(core.setRobSize(8), testing::ExitedWithCode(1), "ROB");
    EXPECT_EXIT(core.setRobSize(256), testing::ExitedWithCode(1), "ROB");
    core.setRobSize(64);
    EXPECT_EQ(core.robSize(), 64u);
}

TEST(Core, RobShrinkTakesEffect)
{
    RepeatSource src(alu());
    MemoryHierarchy mem;
    Core core(CoreConfig{}, &src, &mem);
    core.run(100, 1.0);
    core.setRobSize(16);
    core.run(200, 1.0);
    EXPECT_LE(core.robOccupancy(), 16u);
}

TEST(Core, CountersAreConsistent)
{
    RepeatSource src(alu());
    MemoryHierarchy mem;
    Core core(CoreConfig{}, &src, &mem);
    core.run(5000, 1.0);
    core.resetCounters();
    core.run(1000, 1.0);
    const CoreCounters &c = core.counters();
    EXPECT_EQ(c.cycles, 1000u);
    // Ops fetched before the counter reset may dispatch after it, so
    // allow slack of one fetch-queue depth.
    EXPECT_GE(c.fetched + 32, c.dispatched);
    EXPECT_GE(c.dispatched + 32, c.issued);
    EXPECT_GE(c.issued + 32, c.committed);
    uint64_t by_class = 0;
    for (uint64_t v : c.issuedByClass)
        by_class += v;
    EXPECT_EQ(by_class, c.issued);
}

TEST(Core, FlushPipelineEmptiesWindow)
{
    RepeatSource src(alu(1));
    MemoryHierarchy mem;
    Core core(CoreConfig{}, &src, &mem);
    core.run(20000, 1.0); // warm
    EXPECT_GT(core.robOccupancy(), 0u);
    core.flushPipeline();
    EXPECT_EQ(core.robOccupancy(), 0u);
    // And the core keeps running correctly afterwards.
    core.resetCounters();
    core.run(500, 1.0);
    EXPECT_GT(core.counters().ipc(), 0.5);
}

TEST(Core, NullSourceIsFatal)
{
    MemoryHierarchy mem;
    EXPECT_EXIT(Core core(CoreConfig{}, nullptr, &mem),
                testing::ExitedWithCode(1), "instruction source");
}

} // namespace
} // namespace mimoarch
