/**
 * @file
 * DVFS table tests: the 16 Table III operating points, A15-style
 * voltage interpolation, transition accounting, and level lookup.
 */

#include <gtest/gtest.h>

#include "sim/dvfs.hpp"

namespace mimoarch {
namespace {

TEST(Dvfs, SixteenLevelsCoverHalfToTwoGhz)
{
    EXPECT_DOUBLE_EQ(DvfsController::freqAtLevel(0), 0.5);
    EXPECT_DOUBLE_EQ(DvfsController::freqAtLevel(15), 2.0);
    for (unsigned l = 0; l + 1 < DvfsController::kNumLevels; ++l) {
        EXPECT_NEAR(DvfsController::freqAtLevel(l + 1) -
                        DvfsController::freqAtLevel(l),
                    0.1, 1e-12);
    }
}

TEST(Dvfs, VoltageMonotoneIncreasing)
{
    for (unsigned l = 0; l + 1 < DvfsController::kNumLevels; ++l) {
        EXPECT_LT(DvfsController::voltageAtLevel(l),
                  DvfsController::voltageAtLevel(l + 1));
    }
    EXPECT_NEAR(DvfsController::voltageAtLevel(0), 0.90, 1e-9);
    EXPECT_NEAR(DvfsController::voltageAtLevel(15), 1.25, 1e-9);
}

TEST(Dvfs, LevelForFreqRoundsAndClamps)
{
    EXPECT_EQ(DvfsController::levelForFreq(1.3), 8u);
    EXPECT_EQ(DvfsController::levelForFreq(1.34), 8u);
    EXPECT_EQ(DvfsController::levelForFreq(1.36), 9u);
    EXPECT_EQ(DvfsController::levelForFreq(0.1), 0u);
    EXPECT_EQ(DvfsController::levelForFreq(9.9), 15u);
}

TEST(Dvfs, TransitionChargesLatencyOnce)
{
    DvfsController d(5.0);
    EXPECT_DOUBLE_EQ(d.setLevel(d.level()), 0.0); // no-op
    EXPECT_DOUBLE_EQ(d.setLevel(12), 5.0);
    EXPECT_DOUBLE_EQ(d.setLevel(12), 0.0);
    EXPECT_EQ(d.transitions(), 1u);
    EXPECT_DOUBLE_EQ(d.freqGhz(), 1.7);
}

TEST(Dvfs, DefaultLevelIsBaseline)
{
    DvfsController d;
    EXPECT_DOUBLE_EQ(d.freqGhz(), 1.3); // Table III E x D baseline
}

TEST(Dvfs, OutOfRangeLevelIsFatal)
{
    DvfsController d;
    EXPECT_EXIT(d.setLevel(16), testing::ExitedWithCode(1),
                "out of range");
    EXPECT_EXIT(DvfsController::freqAtLevel(99), testing::ExitedWithCode(1),
                "out of range");
}

} // namespace
} // namespace mimoarch
