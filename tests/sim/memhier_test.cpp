/**
 * @file
 * Memory hierarchy tests: latency composition, frequency scaling of
 * L2/memory latencies, lockstep way gating, and effective capacity.
 */

#include <gtest/gtest.h>

#include "sim/memhier.hpp"

namespace mimoarch {
namespace {

TEST(MemHier, L1HitLatency)
{
    MemoryHierarchy mh;
    mh.accessData(0x1000, false, 1.3);              // cold fill
    const MemAccessResult r = mh.accessData(0x1000, false, 1.3);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latencyCycles, 3u);
}

TEST(MemHier, MissLatenciesAtBaselineFrequency)
{
    MemoryHierarchy mh;
    // Cold access goes to memory: L1 + L2 + mem latency. At 1.3 GHz the
    // Table III numbers (18 and 125 cycles) must be recovered.
    const MemAccessResult r = mh.accessData(0x2000, false, 1.3);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_FALSE(r.l2Hit);
    EXPECT_EQ(r.latencyCycles, 3u + 18u + 125u);
}

TEST(MemHier, L2HitAfterL1Eviction)
{
    MemoryHierarchy mh;
    mh.accessData(0x3000, false, 1.3);
    // Evict from L1 (4KB stride x many fills in the same L1 set, but
    // different L2 sets keep the line in L2).
    for (int i = 1; i <= 7; ++i)
        mh.accessData(0x3000 + static_cast<uint64_t>(i) * 32 * 1024,
                      false, 1.3);
    const MemAccessResult r = mh.accessData(0x3000, false, 1.3);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_TRUE(r.l2Hit);
    EXPECT_EQ(r.latencyCycles, 3u + 18u);
}

TEST(MemHier, MemoryLatencyScalesWithFrequency)
{
    MemoryHierarchy mh;
    const MemAccessResult slow = mh.accessData(0x9000, false, 0.5);
    MemoryHierarchy mh2;
    const MemAccessResult fast = mh2.accessData(0x9000, false, 2.0);
    // Same wall-clock memory time costs ~4x more cycles at 4x frequency.
    EXPECT_GT(fast.latencyCycles, 3 * slow.latencyCycles);
}

TEST(MemHier, InstrAccessUsesL1i)
{
    MemoryHierarchy mh;
    mh.accessInstr(0x400000, 1.3);
    const MemAccessResult r = mh.accessInstr(0x400000, 1.3);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latencyCycles, 2u);
    EXPECT_EQ(mh.l1i().stats().accesses, 2u);
    EXPECT_EQ(mh.l1d().stats().accesses, 0u);
}

TEST(MemHier, CacheSizeSettingsMatchPaperTable)
{
    MemoryHierarchy mh;
    // Setting 3 (full): L2 8 ways, L1D 4 ways -> 256 + 32 = 288 KB.
    EXPECT_EQ(mh.cacheSizeSetting(), 3u);
    EXPECT_DOUBLE_EQ(mh.effectiveCacheKb(), 288.0);
    mh.setCacheSizeSetting(2); // (6,3) -> 192 + 24 = 216 KB
    EXPECT_DOUBLE_EQ(mh.effectiveCacheKb(), 216.0);
    mh.setCacheSizeSetting(1); // (4,2) -> 128 + 16 = 144 KB
    EXPECT_DOUBLE_EQ(mh.effectiveCacheKb(), 144.0);
    mh.setCacheSizeSetting(0); // (2,1) -> 64 + 8 = 72 KB
    EXPECT_DOUBLE_EQ(mh.effectiveCacheKb(), 72.0);
    EXPECT_EQ(mh.l2().enabledWays(), 2u);
    EXPECT_EQ(mh.l1d().enabledWays(), 1u);
}

TEST(MemHier, GatingReturnsDirtyCount)
{
    MemoryHierarchy mh;
    // Dirty a bunch of L1D lines spread over ways.
    for (uint64_t a = 0; a < 32 * 1024; a += 64)
        mh.accessData(a, true, 1.3);
    const uint64_t dirty = mh.setCacheSizeSetting(0);
    EXPECT_GT(dirty, 0u);
}

TEST(MemHier, SmallerCacheMissesMore)
{
    // A 160KB working set fits at full size (288KB) but not at 72KB.
    const auto run = [](unsigned setting) {
        MemoryHierarchy mh;
        mh.setCacheSizeSetting(setting);
        uint64_t misses = 0;
        for (int pass = 0; pass < 6; ++pass) {
            for (uint64_t a = 0; a < 160 * 1024; a += 64) {
                const MemAccessResult r = mh.accessData(a, false, 1.3);
                if (!r.l1Hit && !r.l2Hit)
                    ++misses;
            }
        }
        return misses;
    };
    EXPECT_GT(run(0), 2 * run(3));
}

TEST(MemHier, ResetPreservesSetting)
{
    MemoryHierarchy mh;
    mh.setCacheSizeSetting(1);
    mh.accessData(0x1234, true, 1.0);
    mh.reset();
    EXPECT_EQ(mh.cacheSizeSetting(), 1u);
    EXPECT_EQ(mh.l1d().stats().accesses, 0u);
    EXPECT_EQ(mh.l2().enabledWays(), 4u);
}

TEST(MemHier, InvalidSettingIsFatal)
{
    MemoryHierarchy mh;
    EXPECT_EXIT(mh.setCacheSizeSetting(4), testing::ExitedWithCode(1),
                "out of range");
}

} // namespace
} // namespace mimoarch
