/**
 * @file
 * Parameterized sweep over the knob grid: for a representative
 * application, every (frequency, cache) configuration must produce a
 * sane, internally consistent epoch readout — the invariants the
 * controller relies on across the whole actuation space.
 */

#include <gtest/gtest.h>

#include "sim/processor.hpp"
#include "workload/spec_suite.hpp"
#include "workload/synthetic_stream.hpp"

namespace mimoarch {
namespace {

struct GridPoint
{
    unsigned freqLevel;
    unsigned cacheSetting;
    unsigned robSize;
};

class KnobGrid : public ::testing::TestWithParam<GridPoint>
{};

TEST_P(KnobGrid, EpochReadoutInvariants)
{
    const GridPoint gp = GetParam();
    SyntheticStream stream(Spec2006Suite::byName("sphinx3"));
    Processor proc(ProcessorConfig{}, &stream);
    proc.setFrequencyLevel(gp.freqLevel);
    proc.setCacheSizeSetting(gp.cacheSetting);
    proc.setRobSize(gp.robSize);
    for (int i = 0; i < 80; ++i) {
        proc.runEpoch();
        stream.nextEpoch();
    }
    double ips = 0, power = 0;
    for (int i = 0; i < 15; ++i) {
        const EpochOutputs o = proc.runEpoch();
        stream.nextEpoch();
        ips += o.ips;
        power += o.powerWatts;
        // Per-epoch invariants.
        EXPECT_GE(o.ipc, 0.0);
        EXPECT_LE(o.ipc, 3.0); // issue width bound
        EXPECT_GE(o.utilization, 0.0);
        EXPECT_LE(o.utilization, 1.0);
        EXPECT_GE(o.l2Mpki, 0.0);
        EXPECT_GE(o.stallFraction, 0.0);
        EXPECT_LE(o.stallFraction, 1.0);
    }
    ips /= 15;
    power /= 15;
    // IPS cannot exceed width * frequency.
    const double f = DvfsController::freqAtLevel(gp.freqLevel);
    EXPECT_GT(ips, 0.0);
    EXPECT_LT(ips, 3.0 * f + 0.01);
    // Power stays within the physical envelope of this model.
    EXPECT_GT(power, 0.3);
    EXPECT_LT(power, 4.0);
}

std::vector<GridPoint>
gridPoints()
{
    std::vector<GridPoint> pts;
    for (unsigned f : {0u, 5u, 10u, 15u})
        for (unsigned c : {0u, 1u, 2u, 3u})
            pts.push_back({f, c, 128});
    // A few reduced-ROB points.
    pts.push_back({8, 2, 16});
    pts.push_back({8, 2, 48});
    pts.push_back({15, 3, 32});
    return pts;
}

INSTANTIATE_TEST_SUITE_P(Grid, KnobGrid,
                         ::testing::ValuesIn(gridPoints()));

/** Frequency monotonicity of power across the full sweep. */
class FreqSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(FreqSweep, PowerIncreasesWithTheNextLevel)
{
    const unsigned level = GetParam();
    const auto power_at = [](unsigned l) {
        SyntheticStream stream(Spec2006Suite::byName("gromacs"));
        Processor proc(ProcessorConfig{}, &stream);
        proc.setFrequencyLevel(l);
        for (int i = 0; i < 100; ++i) {
            proc.runEpoch();
            stream.nextEpoch();
        }
        double p = 0;
        for (int i = 0; i < 20; ++i) {
            p += proc.runEpoch().powerWatts;
            stream.nextEpoch();
        }
        return p / 20;
    };
    // Allow a little noise; the trend must hold across 3 levels.
    EXPECT_LT(power_at(level), power_at(level + 3) * 1.02);
}

INSTANTIATE_TEST_SUITE_P(Levels, FreqSweep,
                         ::testing::Values(0, 3, 6, 9, 12));

} // namespace
} // namespace mimoarch
