/**
 * @file
 * Processor-level tests: epoch readout sanity, knob monotonicity (the
 * response surface the controller relies on), actuation overheads, and
 * cumulative accounting. These are the calibration checks for the
 * ESESC-substitute (see DESIGN.md).
 */

#include <gtest/gtest.h>

#include "sim/processor.hpp"
#include "workload/spec_suite.hpp"
#include "workload/synthetic_stream.hpp"

namespace mimoarch {
namespace {

/** Run a few epochs and average (ips, power). */
std::pair<double, double>
steadyOutputs(Processor &proc, SyntheticStream &stream,
              int warmup = 150, int measure = 20)
{
    for (int i = 0; i < warmup; ++i) {
        proc.runEpoch();
        stream.nextEpoch();
    }
    double ips = 0, pw = 0;
    for (int i = 0; i < measure; ++i) {
        const EpochOutputs o = proc.runEpoch();
        stream.nextEpoch();
        ips += o.ips;
        pw += o.powerWatts;
    }
    return {ips / measure, pw / measure};
}

TEST(Processor, EpochReadoutInSaneRange)
{
    SyntheticStream stream(Spec2006Suite::byName("namd"));
    Processor proc(ProcessorConfig{}, &stream);
    const auto [ips, power] = steadyOutputs(proc, stream);
    EXPECT_GT(ips, 0.3);
    EXPECT_LT(ips, 6.0);
    EXPECT_GT(power, 0.4);
    EXPECT_LT(power, 6.0);
}

TEST(Processor, IpsIncreasesWithFrequencyForComputeBound)
{
    const auto at_level = [](unsigned level) {
        SyntheticStream stream(Spec2006Suite::byName("gamess"));
        Processor proc(ProcessorConfig{}, &stream);
        proc.setFrequencyLevel(level);
        return steadyOutputs(proc, stream).first;
    };
    const double lo = at_level(0), mid = at_level(8), hi = at_level(15);
    EXPECT_LT(lo, mid);
    EXPECT_LT(mid, hi);
    // Compute-bound code scales nearly linearly with frequency.
    EXPECT_GT(hi / lo, 2.5);
}

TEST(Processor, PowerIncreasesWithFrequency)
{
    const auto at_level = [](unsigned level) {
        SyntheticStream stream(Spec2006Suite::byName("gamess"));
        Processor proc(ProcessorConfig{}, &stream);
        proc.setFrequencyLevel(level);
        return steadyOutputs(proc, stream).second;
    };
    const double lo = at_level(0), hi = at_level(15);
    // P ~ C V^2 f: superlinear in f along the DVFS curve.
    EXPECT_GT(hi / lo, 3.0);
}

TEST(Processor, MemoryBoundAppInsensitiveToFrequency)
{
    const auto at_level = [](unsigned level) {
        SyntheticStream stream(Spec2006Suite::byName("mcf"));
        Processor proc(ProcessorConfig{}, &stream);
        proc.setFrequencyLevel(level);
        return steadyOutputs(proc, stream).first;
    };
    const double lo = at_level(0), hi = at_level(15);
    // mcf is dominated by memory time: 4x frequency gives far less
    // than 4x IPS.
    EXPECT_LT(hi / lo, 2.5);
    EXPECT_GT(hi / lo, 0.9);
}

TEST(Processor, CacheSensitiveAppGainsFromBiggerCache)
{
    // dealII's 200KB hot set fits at setting 3 (288KB) but thrashes at
    // setting 0 (72KB).
    const auto at_setting = [](unsigned setting) {
        SyntheticStream stream(Spec2006Suite::byName("dealII"));
        ProcessorConfig cfg;
        cfg.sampleCycles = 4000;
        Processor proc(cfg, &stream);
        proc.setCacheSizeSetting(setting);
        return steadyOutputs(proc, stream).first;
    };
    EXPECT_GT(at_setting(3), 1.15 * at_setting(0));
}

TEST(Processor, TinyWorkingSetInsensitiveToCache)
{
    // A 6KB hot set fits even in the 8KB single-way L1D, so the cache
    // knob should barely move the IPS.
    AppSpec tiny = Spec2006Suite::byName("namd");
    tiny.phases[0].hotBytes = 6 * 1024;
    const auto at_setting = [&](unsigned setting) {
        SyntheticStream stream(tiny);
        Processor proc(ProcessorConfig{}, &stream);
        proc.setCacheSizeSetting(setting);
        return steadyOutputs(proc, stream).first;
    };
    const double small = at_setting(0), big = at_setting(3);
    EXPECT_NEAR(big / small, 1.0, 0.15);
}

TEST(Processor, SmallerCacheSavesLeakagePower)
{
    // An app that fits in L1 sees mostly the leakage saving.
    const auto at_setting = [](unsigned setting) {
        SyntheticStream stream(Spec2006Suite::byName("namd"));
        Processor proc(ProcessorConfig{}, &stream);
        proc.setCacheSizeSetting(setting);
        return steadyOutputs(proc, stream).second;
    };
    EXPECT_LT(at_setting(0), at_setting(3));
}

TEST(Processor, RobSizeHelpsIlp)
{
    const auto at_rob = [](unsigned entries) {
        SyntheticStream stream(Spec2006Suite::byName("milc"));
        Processor proc(ProcessorConfig{}, &stream);
        proc.setRobSize(entries);
        return steadyOutputs(proc, stream).first;
    };
    EXPECT_GT(at_rob(128), at_rob(16));
}

TEST(Processor, DvfsTransitionStallsEpoch)
{
    SyntheticStream stream(Spec2006Suite::byName("namd"));
    Processor proc(ProcessorConfig{}, &stream);
    proc.runEpoch();
    proc.setFrequencyLevel(15);
    const EpochOutputs o = proc.runEpoch();
    // 5 us of a 50 us epoch.
    EXPECT_NEAR(o.stallFraction, 0.1, 1e-9);
    const EpochOutputs o2 = proc.runEpoch();
    EXPECT_DOUBLE_EQ(o2.stallFraction, 0.0);
}

TEST(Processor, CacheGatingStallsEpoch)
{
    SyntheticStream stream(Spec2006Suite::byName("leslie3d"));
    Processor proc(ProcessorConfig{}, &stream);
    // Dirty the caches first.
    for (int i = 0; i < 10; ++i)
        proc.runEpoch();
    proc.setCacheSizeSetting(0);
    const EpochOutputs o = proc.runEpoch();
    EXPECT_GT(o.stallFraction, 0.0);
}

TEST(Processor, CumulativeAccountingAddsUp)
{
    SyntheticStream stream(Spec2006Suite::byName("sjeng"));
    Processor proc(ProcessorConfig{}, &stream);
    double energy = 0.0;
    for (int i = 0; i < 20; ++i)
        energy += proc.runEpoch().energyJoules;
    EXPECT_NEAR(proc.totalEnergyJoules(), energy, 1e-12);
    EXPECT_NEAR(proc.elapsedSeconds(), 20 * 50e-6, 1e-12);
    EXPECT_GT(proc.totalInstructionsB(), 0.0);
}

TEST(Processor, UtilizationBounded)
{
    SyntheticStream stream(Spec2006Suite::byName("povray"));
    Processor proc(ProcessorConfig{}, &stream);
    for (int i = 0; i < 10; ++i) {
        const EpochOutputs o = proc.runEpoch();
        EXPECT_GE(o.utilization, 0.0);
        EXPECT_LE(o.utilization, 1.0);
    }
}

} // namespace
} // namespace mimoarch
