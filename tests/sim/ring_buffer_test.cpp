/**
 * @file
 * RingBuffer unit tests: wrap-around correctness against a deque
 * reference, the issued-prefix indexing pattern the core's ROB walk
 * relies on, and the full/empty edge behavior (hard panics).
 */

#include <gtest/gtest.h>

#include <deque>
#include <random>

#include "sim/ring_buffer.hpp"

namespace mimoarch {
namespace {

TEST(RingBufferTest, StartsEmptyWithZeroCapacity)
{
    RingBuffer<int> rb;
    EXPECT_EQ(rb.size(), 0u);
    EXPECT_EQ(rb.capacity(), 0u);
    EXPECT_TRUE(rb.empty());
}

TEST(RingBufferTest, ResetSetsCapacityAndEmpties)
{
    RingBuffer<int> rb;
    rb.reset(8);
    EXPECT_EQ(rb.capacity(), 8u);
    EXPECT_TRUE(rb.empty());

    rb.push_back(1);
    rb.push_back(2);
    rb.reset(4);
    EXPECT_EQ(rb.capacity(), 4u);
    EXPECT_TRUE(rb.empty());
}

TEST(RingBufferTest, FifoOrderAcrossWrap)
{
    RingBuffer<int> rb;
    rb.reset(4);
    // Advance head so subsequent pushes wrap the physical end.
    for (int cycle = 0; cycle < 10; ++cycle) {
        rb.push_back(cycle);
        EXPECT_EQ(rb.front(), cycle);
        rb.pop_front();
    }
    rb.push_back(100);
    rb.push_back(101);
    rb.push_back(102);
    rb.push_back(103); // fills to capacity across the wrap point
    EXPECT_EQ(rb.size(), 4u);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(rb[i], 100 + static_cast<int>(i));
    EXPECT_EQ(rb.front(), 100);
    rb.pop_front();
    EXPECT_EQ(rb.front(), 101);
    EXPECT_EQ(rb.size(), 3u);
}

TEST(RingBufferTest, IndexingMatchesDequeReference)
{
    // Randomized push/pop schedule, every element checked through
    // operator[] after each step — the access pattern the per-cycle
    // ROB and fetch-queue loops use.
    RingBuffer<uint64_t> rb;
    std::deque<uint64_t> ref;
    const size_t cap = 16;
    rb.reset(cap);
    std::mt19937_64 rng(12345);
    uint64_t next = 0;
    for (int step = 0; step < 2000; ++step) {
        const bool can_push = rb.size() < cap;
        const bool can_pop = !rb.empty();
        const bool push =
            can_push && (!can_pop || (rng() & 1) == 0);
        if (push) {
            rb.push_back(next);
            ref.push_back(next);
            ++next;
        } else if (can_pop) {
            EXPECT_EQ(rb.front(), ref.front());
            rb.pop_front();
            ref.pop_front();
        }
        ASSERT_EQ(rb.size(), ref.size());
        for (size_t i = 0; i < ref.size(); ++i)
            ASSERT_EQ(rb[i], ref[i]) << "index " << i;
    }
}

TEST(RingBufferTest, IssuedPrefixPattern)
{
    // The core walks the ROB as an issued prefix: entries [0, issued)
    // are in flight, [issued, size) are waiting. Retirement pops the
    // front and shifts the prefix; the logical indices must stay
    // consistent through wrap-around.
    struct Op
    {
        uint64_t seq = 0;
        bool issued = false;
    };
    RingBuffer<Op> rob;
    rob.reset(6);
    uint64_t seq = 0;
    uint64_t retired = 0;
    for (int cycle = 0; cycle < 200; ++cycle) {
        // Dispatch up to capacity.
        while (rob.size() < rob.capacity())
            rob.push_back(Op{seq++, false});
        // Issue the first two waiting entries.
        size_t issued_this_cycle = 0;
        for (size_t i = 0; i < rob.size() && issued_this_cycle < 2; ++i) {
            if (!rob[i].issued) {
                rob[i].issued = true;
                ++issued_this_cycle;
            }
        }
        // Retire from the front while issued. The issued flags must
        // form a prefix: a waiting op never precedes an issued one.
        bool seen_waiting = false;
        for (size_t i = 0; i < rob.size(); ++i) {
            if (!rob[i].issued)
                seen_waiting = true;
            else
                ASSERT_FALSE(seen_waiting)
                    << "issued op after a waiting op at index " << i;
        }
        while (!rob.empty() && rob.front().issued) {
            ASSERT_EQ(rob.front().seq, retired);
            ++retired;
            rob.pop_front();
        }
    }
    EXPECT_GT(retired, 0u);
}

TEST(RingBufferTest, ClearKeepsCapacity)
{
    RingBuffer<int> rb;
    rb.reset(4);
    rb.push_back(1);
    rb.push_back(2);
    rb.clear();
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.capacity(), 4u);
    rb.push_back(7);
    EXPECT_EQ(rb.front(), 7);
}

TEST(RingBufferDeathTest, OverflowPanics)
{
    RingBuffer<int> rb;
    rb.reset(2);
    rb.push_back(1);
    rb.push_back(2);
    EXPECT_DEATH(rb.push_back(3), "RingBuffer overflow");
}

TEST(RingBufferDeathTest, PopEmptyPanics)
{
    RingBuffer<int> rb;
    rb.reset(2);
    EXPECT_DEATH(rb.pop_front(), "pop_front on empty");
}

TEST(RingBufferDeathTest, ZeroCapacityPushPanics)
{
    RingBuffer<int> rb;
    EXPECT_DEATH(rb.push_back(1), "RingBuffer overflow");
}

} // namespace
} // namespace mimoarch
