/**
 * @file
 * ARX identification tests: coefficient recovery on known systems,
 * exactness of the state-space realization (it must reproduce the ARX
 * recursion), noise covariance estimation, and closed-loop usefulness
 * of an identified model.
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "sysid/arx.hpp"

namespace mimoarch {
namespace {

/** Generate a persistent random input record. */
Matrix
randomInput(size_t t_len, size_t n_in, Rng &rng)
{
    Matrix u(t_len, n_in);
    std::vector<double> hold(n_in, 0.0);
    for (size_t t = 0; t < t_len; ++t) {
        for (size_t c = 0; c < n_in; ++c) {
            if (t % 5 == 0 || rng.bernoulli(0.1))
                hold[c] = rng.uniform(-1.0, 1.0);
            u(t, c) = hold[c];
        }
    }
    return u;
}

TEST(Arx, RecoversSisoArxCoefficients)
{
    // y(t) = 0.6 y(t-1) + 0.5 u(t) + 0.3 u(t-1), no noise.
    Rng rng(21);
    const size_t t_len = 600;
    Matrix u = randomInput(t_len, 1, rng);
    Matrix y(t_len, 1);
    for (size_t t = 1; t < t_len; ++t)
        y(t, 0) = 0.6 * y(t - 1, 0) + 0.5 * u(t, 0) + 0.3 * u(t - 1, 0);

    ArxConfig cfg;
    cfg.order = 1;
    cfg.ridge = 1e-10;
    const ArxModel m = fitArx(u, y, cfg);
    // Coefficients are fit in scaled space; a-coefficients (output to
    // output) are scale-invariant.
    EXPECT_NEAR(m.aCoef[0](0, 0), 0.6, 1e-6);
    // b coefficients carry the u/y scale ratio.
    const double ratio = m.inputScaling.scale[0] / m.outputScaling.scale[0];
    EXPECT_NEAR(m.bCoef[0](0, 0) / ratio, 0.5, 1e-5);
    EXPECT_NEAR(m.bCoef[1](0, 0) / ratio, 0.3, 1e-5);
    // Noise-free fit: residual covariance is tiny (not exactly zero —
    // z-scoring drops the intercept, leaving a small constant term).
    EXPECT_LT(m.residualCov(0, 0), 1e-5);
}

TEST(Arx, SimulateReproducesTrainingData)
{
    Rng rng(22);
    const size_t t_len = 500;
    Matrix u = randomInput(t_len, 2, rng);
    Matrix y(t_len, 2);
    for (size_t t = 2; t < t_len; ++t) {
        y(t, 0) = 0.5 * y(t - 1, 0) + 0.1 * y(t - 2, 1) + 0.4 * u(t, 0) +
            0.2 * u(t - 1, 1);
        y(t, 1) = 0.3 * y(t - 1, 1) - 0.1 * y(t - 1, 0) + 0.5 * u(t, 1) +
            0.1 * u(t - 2, 0);
    }
    ArxConfig cfg;
    cfg.order = 2;
    cfg.ridge = 1e-10;
    const ArxModel m = fitArx(u, y, cfg);
    const Matrix y_sim = m.simulate(u);
    // After the initial transient the simulation must track closely.
    double err = 0.0;
    for (size_t t = 50; t < t_len; ++t)
        err += std::abs(y_sim(t, 0) - y(t, 0)) +
            std::abs(y_sim(t, 1) - y(t, 1));
    EXPECT_LT(err / static_cast<double>(t_len - 50), 5e-3);
}

TEST(Arx, RealizationMatchesArxRecursionExactly)
{
    // The block observer realization must reproduce the ARX simulation
    // sample for sample (this pins down the A_m/B_m algebra).
    Rng rng(23);
    const size_t t_len = 200;
    Matrix u = randomInput(t_len, 2, rng);
    Matrix y(t_len, 2);
    for (size_t t = 2; t < t_len; ++t) {
        y(t, 0) = 0.4 * y(t - 1, 0) + 0.2 * y(t - 2, 1) + 0.6 * u(t, 0);
        y(t, 1) = 0.5 * y(t - 1, 1) + 0.3 * u(t, 1) + 0.2 * u(t - 1, 0);
    }
    ArxConfig cfg;
    cfg.order = 2;
    cfg.ridge = 1e-10;
    const ArxModel arx = fitArx(u, y, cfg);
    const StateSpaceModel ss = realize(arx);

    const Matrix y_arx = arx.simulate(u);
    const Matrix u_scaled = ss.inputScaling.toScaled(u);
    const Matrix y_ss_scaled = ss.simulate(u_scaled,
                                           Matrix(ss.stateDim(), 1));
    const Matrix y_ss = ss.outputScaling.toPhysical(y_ss_scaled);
    EXPECT_TRUE(approxEqual(y_arx, y_ss, 1e-8))
        << "realization diverges from ARX recursion";
}

TEST(Arx, RealizationDimensionIsOrderTimesOutputs)
{
    Rng rng(24);
    Matrix u = randomInput(300, 2, rng);
    Matrix y(300, 2);
    for (size_t t = 1; t < 300; ++t) {
        y(t, 0) = 0.5 * y(t - 1, 0) + u(t, 0);
        y(t, 1) = 0.4 * y(t - 1, 1) + u(t, 1);
    }
    for (size_t order : {1u, 2u, 3u, 4u}) {
        ArxConfig cfg;
        cfg.order = order;
        const StateSpaceModel ss = identify(u, y, cfg);
        EXPECT_EQ(ss.stateDim(), 2 * order);
        EXPECT_EQ(ss.numInputs(), 2u);
        EXPECT_EQ(ss.numOutputs(), 2u);
    }
}

TEST(Arx, NoiseCovarianceEstimatedFromResiduals)
{
    Rng rng(25);
    const size_t t_len = 4000;
    Matrix u = randomInput(t_len, 1, rng);
    Matrix y(t_len, 1);
    const double sigma = 0.05;
    for (size_t t = 1; t < t_len; ++t) {
        y(t, 0) = 0.6 * y(t - 1, 0) + 0.5 * u(t, 0) +
            rng.normal(0.0, sigma);
    }
    ArxConfig cfg;
    cfg.order = 1;
    const ArxModel m = fitArx(u, y, cfg);
    // Residual covariance in scaled units: sigma^2 / scale_y^2.
    const double expected =
        sigma * sigma / (m.outputScaling.scale[0] *
                         m.outputScaling.scale[0]);
    EXPECT_NEAR(m.residualCov(0, 0), expected, expected * 0.2);
    // The realization carries it into Rn and Qn.
    const StateSpaceModel ss = realize(m);
    EXPECT_NEAR(ss.rn(0, 0), m.residualCov(0, 0), 1e-12);
    EXPECT_GT(ss.qn(0, 0), 0.0);
}

TEST(Arx, HigherOrderFitsUnderModeledDynamicsBetter)
{
    // The true system is order 3; fitting with order 1 vs 3 shows the
    // Fig. 7 trend (more model dimensions -> lower error).
    Rng rng(26);
    const size_t t_len = 1500;
    Matrix u = randomInput(t_len, 1, rng);
    Matrix y(t_len, 1);
    for (size_t t = 3; t < t_len; ++t) {
        y(t, 0) = 0.4 * y(t - 1, 0) + 0.25 * y(t - 2, 0) +
            0.15 * y(t - 3, 0) + 0.5 * u(t, 0) + 0.2 * u(t - 2, 0);
    }
    const auto sim_error = [&](size_t order) {
        ArxConfig cfg;
        cfg.order = order;
        const ArxModel m = fitArx(u, y, cfg);
        const Matrix y_sim = m.simulate(u);
        double err = 0.0;
        for (size_t t = 100; t < t_len; ++t)
            err += std::abs(y_sim(t, 0) - y(t, 0));
        return err;
    };
    EXPECT_GT(sim_error(1), 5.0 * sim_error(3));
}

TEST(Arx, ShortRecordIsFatal)
{
    Matrix u(10, 2);
    Matrix y(10, 2);
    ArxConfig cfg;
    cfg.order = 3;
    EXPECT_EXIT(fitArx(u, y, cfg), testing::ExitedWithCode(1),
                "too short");
}

TEST(Arx, MismatchedRecordsAreFatal)
{
    EXPECT_EXIT(fitArx(Matrix(100, 1), Matrix(90, 1), ArxConfig{}),
                testing::ExitedWithCode(1), "length");
}

} // namespace
} // namespace mimoarch
