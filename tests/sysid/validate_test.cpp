/**
 * @file
 * Model validation tests: near-zero error for a perfect model, error
 * growth with mismatch, and the guardband workflow (max error feeds the
 * 3x guardband rule).
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "sysid/arx.hpp"
#include "sysid/validate.hpp"

namespace mimoarch {
namespace {

struct TestSystem
{
    Matrix u;
    Matrix y;
};

TestSystem
makeRecords(double extra_gain, uint64_t seed, size_t t_len = 800)
{
    Rng rng(seed);
    TestSystem s;
    s.u = Matrix(t_len, 1);
    s.y = Matrix(t_len, 1);
    double hold = 0.0;
    for (size_t t = 0; t < t_len; ++t) {
        if (t % 7 == 0)
            hold = rng.uniform(0.5, 2.0);
        s.u(t, 0) = hold;
        if (t >= 1) {
            s.y(t, 0) = 0.5 * s.y(t - 1, 0) +
                extra_gain * 0.8 * s.u(t, 0) + 2.0;
        }
    }
    return s;
}

TEST(Validate, PerfectModelHasTinyError)
{
    const TestSystem train = makeRecords(1.0, 31);
    ArxConfig cfg;
    cfg.order = 1;
    const StateSpaceModel model = identify(train.u, train.y, cfg);
    const TestSystem fresh = makeRecords(1.0, 32);
    const ValidationReport rep =
        validateModel(model, fresh.u, fresh.y);
    EXPECT_LT(rep.meanRelError[0], 0.02);
    EXPECT_LT(rep.maxRelError[0], 0.05);
}

TEST(Validate, MismatchShowsUpAsError)
{
    const TestSystem train = makeRecords(1.0, 33);
    ArxConfig cfg;
    cfg.order = 1;
    const StateSpaceModel model = identify(train.u, train.y, cfg);
    // The "real system" now responds 40% more strongly.
    const TestSystem changed = makeRecords(1.4, 34);
    const ValidationReport rep =
        validateModel(model, changed.u, changed.y);
    EXPECT_GT(rep.maxRelError[0], 0.05);
    EXPECT_GE(rep.maxRelError[0], rep.meanRelError[0]);
}

TEST(Validate, WorstMeanPicksTheWorseOutput)
{
    ValidationReport rep;
    rep.meanRelError = {0.02, 0.14};
    rep.maxRelError = {0.05, 0.2};
    EXPECT_DOUBLE_EQ(rep.worstMean(), 0.14);
}

TEST(Validate, GuardbandWorkflow)
{
    // The paper: observed max errors of 14% (IPS) and 10% (power) were
    // tripled into 50%/30% guardbands. Emulate the computation.
    const TestSystem train = makeRecords(1.0, 35);
    ArxConfig cfg;
    cfg.order = 1;
    const StateSpaceModel model = identify(train.u, train.y, cfg);
    const TestSystem fresh = makeRecords(1.15, 36);
    const ValidationReport rep = validateModel(model, fresh.u, fresh.y);
    const double guardband = 3.0 * rep.maxRelError[0];
    EXPECT_GT(guardband, rep.maxRelError[0]);
    EXPECT_LT(guardband, 1.5); // sane scale for a 15% mismatch
}

TEST(Validate, LengthMismatchIsFatal)
{
    const TestSystem s = makeRecords(1.0, 37);
    ArxConfig cfg;
    cfg.order = 1;
    const StateSpaceModel model = identify(s.u, s.y, cfg);
    EXPECT_EXIT(validateModel(model, Matrix(10, 1), Matrix(9, 1)),
                testing::ExitedWithCode(1), "mismatch");
}

} // namespace
} // namespace mimoarch
