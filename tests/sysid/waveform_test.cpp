/**
 * @file
 * Excitation waveform tests: level validity, coverage of the setting
 * range, dwell-time structure, determinism, and validation.
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "sysid/waveform.hpp"

namespace mimoarch {
namespace {

std::vector<InputChannelSpec>
freqAndCacheChannels()
{
    // The paper's knobs: 16 frequency settings, 4 cache settings.
    InputChannelSpec freq;
    for (int i = 0; i < 16; ++i)
        freq.levels.push_back(0.5 + 0.1 * i);
    InputChannelSpec cache;
    cache.levels = {72.0, 144.0, 216.0, 288.0};
    return {freq, cache};
}

TEST(Waveform, ValuesAreValidLevels)
{
    const auto channels = freqAndCacheChannels();
    WaveformConfig cfg;
    cfg.lengthEpochs = 800;
    const Matrix u = generateExcitation(channels, cfg);
    ASSERT_EQ(u.rows(), 800u);
    ASSERT_EQ(u.cols(), 2u);
    for (size_t t = 0; t < u.rows(); ++t) {
        for (size_t c = 0; c < 2; ++c) {
            const auto &lv = channels[c].levels;
            const bool valid = std::any_of(
                lv.begin(), lv.end(), [&](double v) {
                    return std::abs(v - u(t, c)) < 1e-9;
                });
            EXPECT_TRUE(valid) << "t=" << t << " c=" << c << " v="
                               << u(t, c);
        }
    }
}

TEST(Waveform, CoversTheFullRange)
{
    const auto channels = freqAndCacheChannels();
    WaveformConfig cfg;
    cfg.lengthEpochs = 1500;
    const Matrix u = generateExcitation(channels, cfg);
    for (size_t c = 0; c < 2; ++c) {
        std::set<long> seen;
        for (size_t t = 0; t < u.rows(); ++t)
            seen.insert(std::lround(u(t, c) * 1000));
        // Every level of each channel should appear.
        EXPECT_EQ(seen.size(), channels[c].levels.size()) << "ch " << c;
    }
}

TEST(Waveform, HoldsLevelsForMultipleEpochs)
{
    const auto channels = freqAndCacheChannels();
    WaveformConfig cfg;
    cfg.lengthEpochs = 1000;
    cfg.minHoldEpochs = 4;
    const Matrix u = generateExcitation(channels, cfg);
    // Count how often the value changes; with a min hold of 4 the
    // change rate must be below 1/4.
    size_t changes = 0;
    for (size_t t = 1; t < u.rows(); ++t)
        if (u(t, 0) != u(t - 1, 0))
            ++changes;
    EXPECT_LT(changes, u.rows() / 4);
    EXPECT_GT(changes, 10u); // but it does change
}

TEST(Waveform, DeterministicPerSeed)
{
    const auto channels = freqAndCacheChannels();
    WaveformConfig cfg;
    cfg.lengthEpochs = 300;
    const Matrix u1 = generateExcitation(channels, cfg);
    const Matrix u2 = generateExcitation(channels, cfg);
    EXPECT_TRUE(approxEqual(u1, u2));
    cfg.seed += 1;
    const Matrix u3 = generateExcitation(channels, cfg);
    EXPECT_FALSE(approxEqual(u1, u3));
}

TEST(Waveform, SingleLevelChannelIsFatal)
{
    InputChannelSpec bad;
    bad.levels = {1.0};
    EXPECT_EXIT(generateExcitation({bad}, WaveformConfig{}),
                testing::ExitedWithCode(1), "levels");
}

TEST(Waveform, BadHoldRangeIsFatal)
{
    WaveformConfig cfg;
    cfg.minHoldEpochs = 10;
    cfg.maxHoldEpochs = 5;
    EXPECT_EXIT(generateExcitation(freqAndCacheChannels(), cfg),
                testing::ExitedWithCode(1), "hold");
}

} // namespace
} // namespace mimoarch
