/**
 * @file
 * Concurrent-write correctness for the telemetry layer: many threads
 * hammering shared counters, histograms, the registry's registration
 * path, and the trace buffer's slot-claim. Exactness is asserted
 * (relaxed atomics lose nothing), and the same tests run under ASan
 * and TSan copies (see CMakeLists.txt) to catch races and lifetime
 * bugs the assertions can't.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace mimoarch::telemetry {
namespace {

constexpr unsigned kThreads = 8;
constexpr uint64_t kOpsPerThread = 20000;

void
runThreads(const std::function<void(unsigned)> &body)
{
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&body, t] { body(t); });
    for (std::thread &th : threads)
        th.join();
}

TEST(TelemetryConcurrency, CounterAddsAreExact)
{
    Counter c;
    runThreads([&](unsigned) {
        for (uint64_t i = 0; i < kOpsPerThread; ++i)
            c.add(1);
    });
    EXPECT_EQ(c.value(), uint64_t{kThreads} * kOpsPerThread);
}

TEST(TelemetryConcurrency, HistogramRecordsAreExact)
{
    Histogram h;
    runThreads([&](unsigned t) {
        for (uint64_t i = 0; i < kOpsPerThread; ++i)
            h.record(t * kOpsPerThread + i);
    });
    const HistogramSnapshot s = h.snapshot();
    const uint64_t n = uint64_t{kThreads} * kOpsPerThread;
    EXPECT_EQ(s.count, n);
    EXPECT_EQ(s.sum, n * (n - 1) / 2); // sum of 0..n-1
    EXPECT_EQ(s.min, 0u);
    EXPECT_EQ(s.max, n - 1);
    uint64_t bucket_total = 0;
    for (size_t i = 0; i < HistogramSnapshot::kBuckets; ++i)
        bucket_total += s.buckets[i];
    EXPECT_EQ(bucket_total, n);
}

TEST(TelemetryConcurrency, RegistryRegistrationRaces)
{
    // All threads race to register overlapping names while recording;
    // idempotence must hold (one metric per name, nothing lost).
    Registry reg;
    runThreads([&](unsigned t) {
        for (int i = 0; i < 2000; ++i) {
            reg.counter("shared").add(1);
            reg.counter("c" + std::to_string(i % 10)).add(1);
            reg.gauge("g" + std::to_string(t)).set(1.0);
            reg.histogram("h" + std::to_string(i % 5))
                .record(static_cast<uint64_t>(i));
        }
    });
    EXPECT_EQ(reg.counter("shared").value(), uint64_t{kThreads} * 2000);
    const auto counters = reg.counters();
    ASSERT_EQ(counters.size(), 11u); // "shared" + c0..c9
    uint64_t named_total = 0;
    for (const auto &[name, value] : counters)
        if (name != "shared")
            named_total += value;
    EXPECT_EQ(named_total, uint64_t{kThreads} * 2000);
    uint64_t hist_total = 0;
    for (const auto &[name, snap] : reg.histograms())
        hist_total += snap.count;
    EXPECT_EQ(hist_total, uint64_t{kThreads} * 2000);
}

TEST(TelemetryConcurrency, TraceSlotClaimLosesNothing)
{
    TraceBuffer tb;
    const size_t capacity = 4096;
    tb.start(capacity);
    runThreads([&](unsigned t) {
        for (uint64_t i = 0; i < 1000; ++i)
            tb.complete("e", "cat", i, 1, "t",
                        static_cast<int64_t>(t));
    });
    tb.stop();
    const uint64_t recorded = uint64_t{kThreads} * 1000;
    EXPECT_EQ(tb.size() + tb.dropped(), recorded);
    EXPECT_EQ(tb.size(), std::min<uint64_t>(recorded, capacity));
    // Every kept slot was fully written by exactly one thread.
    std::vector<uint64_t> per_thread(kThreads, 0);
    for (size_t i = 0; i < tb.size(); ++i) {
        const TraceEvent &e = tb[i];
        EXPECT_STREQ(e.name, "e");
        ASSERT_GE(e.argValue, 0);
        ASSERT_LT(e.argValue, static_cast<int64_t>(kThreads));
        ++per_thread[static_cast<size_t>(e.argValue)];
    }
    uint64_t total = 0;
    for (uint64_t n : per_thread)
        total += n;
    EXPECT_EQ(total, tb.size());
}

TEST(TelemetryConcurrency, SpansFromManyThreads)
{
    TraceBuffer &tb = trace();
    tb.start(1 << 16);
    Histogram lat;
    runThreads([&](unsigned) {
        for (int i = 0; i < 500; ++i)
            Span span("work", "test", &lat, "i", i);
    });
    tb.stop();
    EXPECT_EQ(lat.snapshot().count, uint64_t{kThreads} * 500);
    EXPECT_EQ(tb.size(), uint64_t{kThreads} * 500);
    EXPECT_EQ(tb.dropped(), 0u);
    tb.clear();
}

} // namespace
} // namespace mimoarch::telemetry
