/**
 * @file
 * Exporter-format golden tests: renderChromeTrace and renderMetricsJson
 * are pinned byte-for-byte against files in tests/data. Any schema or
 * formatting change — field order, float formatting, escaping, the
 * microsecond rendering — shows up as a diff here and must be
 * intentional. Regenerate after an intentional change with:
 *
 *     MIMOARCH_UPDATE_GOLDEN=1 ./test_exporter_golden
 *
 * which rewrites the golden files in the source tree.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace mimoarch::telemetry {
namespace {

const char *const kTraceGolden =
    MIMOARCH_TEST_DATA_DIR "/golden_chrome_trace.json";
const char *const kMetricsGolden =
    MIMOARCH_TEST_DATA_DIR "/golden_metrics.json";

/** A fixed event sequence covering every exporter feature: complete
 *  and instant events, args, sub-microsecond timestamps, escaping. */
void
fillTraceBuffer(TraceBuffer &tb)
{
    tb.start(8);
    tb.complete("epoch", "loop", 1500, 250, "epoch", 0);
    tb.complete("epoch", "loop", 1750, 43210987, "epoch", 1);
    tb.instant("fallback", "supervisor", 2000, "tier", 2);
    tb.instant("plain-mark", "cat", 999);
    tb.complete("q\"uote\\slash", "esc\x01"
                                  "cat",
                0, 1);
    // Two drops: capacity 8 is not reached, so record them by hand
    // through overflow — fill the remaining slots then two more.
    tb.instant("fill", "cat", 3000);
    tb.instant("fill", "cat", 3001);
    tb.instant("fill", "cat", 3002);
    tb.instant("dropped", "cat", 3003);
    tb.instant("dropped", "cat", 3004);
    tb.stop();
}

/** A registry with every metric kind and edge values the formatter
 *  must render stably (%.17g doubles, empty histogram, zero sample). */
void
fillRegistry(Registry &reg)
{
    reg.counter("loop.epochs").add(1200);
    reg.counter("zero.counter");
    reg.gauge("exec.worker.0.utilization").set(0.1);
    reg.gauge("negative").set(-1.25);
    reg.gauge("big").set(1e18);
    Histogram &h = reg.histogram("loop.epoch_ns");
    h.record(0);
    h.record(1);
    h.record(1000);
    h.record(43210987);
    reg.histogram("empty.histogram");
}

std::string
readFile(const char *path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
checkGolden(const char *path, const std::string &rendered)
{
    if (std::getenv("MIMOARCH_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << rendered;
        GTEST_SKIP() << "golden rewritten to " << path;
    }
    const std::string golden = readFile(path);
    ASSERT_FALSE(golden.empty())
        << "missing golden " << path
        << " — regenerate with MIMOARCH_UPDATE_GOLDEN=1";
    EXPECT_EQ(rendered, golden) << "exporter output drifted from "
                                << path;
}

TEST(ExporterGolden, ChromeTraceIsByteStable)
{
    TraceBuffer tb;
    fillTraceBuffer(tb);
    checkGolden(kTraceGolden, renderChromeTrace(tb));
}

TEST(ExporterGolden, MetricsJsonIsByteStable)
{
    Registry reg;
    fillRegistry(reg);
    checkGolden(kMetricsGolden, renderMetricsJson(reg));
}

TEST(ExporterGolden, RenderingIsDeterministic)
{
    // Same inputs, fresh objects: identical bytes (no iteration-order
    // or address dependence).
    TraceBuffer ta, tb;
    fillTraceBuffer(ta);
    fillTraceBuffer(tb);
    EXPECT_EQ(renderChromeTrace(ta), renderChromeTrace(tb));

    Registry ra, rb;
    fillRegistry(ra);
    fillRegistry(rb);
    EXPECT_EQ(renderMetricsJson(ra), renderMetricsJson(rb));

    // Registration order must not leak into the output: build one
    // registry in reverse and compare.
    Registry rc;
    rc.histogram("empty.histogram");
    Histogram &h = rc.histogram("loop.epoch_ns");
    rc.gauge("big").set(1e18);
    rc.gauge("negative").set(-1.25);
    rc.gauge("exec.worker.0.utilization").set(0.1);
    rc.counter("zero.counter");
    rc.counter("loop.epochs").add(1200);
    h.record(0);
    h.record(1);
    h.record(1000);
    h.record(43210987);
    EXPECT_EQ(renderMetricsJson(rc), renderMetricsJson(ra));
}

TEST(ExporterGolden, TraceParsesAsBalancedJson)
{
    // A cheap structural check (no JSON library in tree): braces and
    // brackets balance and every quote is closed.
    TraceBuffer tb;
    fillTraceBuffer(tb);
    const std::string out = renderChromeTrace(tb);
    long depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (char ch : out) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (in_string) {
            if (ch == '\\')
                escaped = true;
            else if (ch == '"')
                in_string = false;
            continue;
        }
        if (ch == '"')
            in_string = true;
        else if (ch == '{' || ch == '[')
            ++depth;
        else if (ch == '}' || ch == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_string);
}

} // namespace
} // namespace mimoarch::telemetry
