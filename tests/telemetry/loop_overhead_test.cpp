/**
 * @file
 * End-to-end telemetry overhead guard: the same epoch loop (SimPlant +
 * FixedController, the hotpath bench's A/B scenario) timed with the
 * trace disarmed and armed. The per-epoch instrumentation is a handful
 * of counter adds and one Span, so the armed loop must stay within a
 * generous multiple of the disarmed one — this only exists to catch a
 * regression that puts a lock, allocation, or syscall on the per-epoch
 * path, not to measure the real overhead (bench/hotpath_throughput
 * reports that in BENCH_hotpath.json).
 */

#include <gtest/gtest.h>

#include <chrono>

#include "core/controllers.hpp"
#include "core/harness.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/spec_suite.hpp"

namespace mimoarch {
namespace {

/** Wall seconds for one serial fixed-knob run of @p epochs epochs. */
double
loopSeconds(unsigned epochs)
{
    const KnobSpace knobs(false);
    KnobSettings fixed_at;
    fixed_at.freqLevel = 8;
    fixed_at.cacheSetting = 2;
    FixedController ctrl(fixed_at);
    SimPlant plant(Spec2006Suite::byName("namd"), knobs);
    DriverConfig dcfg;
    dcfg.epochs = epochs;
    EpochDriver driver(plant, ctrl, dcfg);
    const auto t0 = std::chrono::steady_clock::now();
    (void)driver.run(KnobSettings{});
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

TEST(TelemetryOverhead, ArmedEpochLoopStaysWithinTheBudget)
{
    ASSERT_FALSE(telemetry::trace().enabled());
    constexpr unsigned kEpochs = 20000;
    loopSeconds(2000); // Warm the suite and code paths once.

    const double off_s = loopSeconds(kEpochs);

    telemetry::trace().start(size_t{1} << 20);
    const double on_s = loopSeconds(kEpochs);
    telemetry::trace().stop();
    telemetry::trace().clear();

    // Generous: 4x the disarmed loop plus 250 ms of absolute slack so
    // a loaded CI machine cannot flake this; the real ratio is a few
    // percent.
    EXPECT_LT(on_s, 4.0 * off_s + 0.25)
        << "telemetry-armed loop took " << on_s << " s vs " << off_s
        << " s disarmed over " << kEpochs << " epochs";
}

} // namespace
} // namespace mimoarch
