/**
 * @file
 * Telemetry metric primitives: counter/gauge semantics, registry
 * idempotence and ordering, and property tests for the fixed-bucket
 * log-scale histogram — exact bucket boundaries, merge associativity
 * and commutativity, and quantile monotonicity.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace mimoarch::telemetry {
namespace {

TEST(CounterTest, AddAccumulatesAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, LastWriteWins)
{
    Gauge g;
    EXPECT_EQ(g.value(), 0.0);
    g.set(3.25);
    EXPECT_EQ(g.value(), 3.25);
    g.set(-0.5);
    EXPECT_EQ(g.value(), -0.5);
    g.reset();
    EXPECT_EQ(g.value(), 0.0);
}

TEST(RegistryTest, RegistrationIsIdempotentWithStableAddresses)
{
    Registry reg;
    Counter &a = reg.counter("x");
    Counter &b = reg.counter("x");
    EXPECT_EQ(&a, &b);
    a.add(7);
    EXPECT_EQ(reg.counter("x").value(), 7u);

    Gauge &g1 = reg.gauge("g");
    Gauge &g2 = reg.gauge("g");
    EXPECT_EQ(&g1, &g2);

    Histogram &h1 = reg.histogram("h");
    Histogram &h2 = reg.histogram("h");
    EXPECT_EQ(&h1, &h2);

    // Same name, different kinds: three independent metrics.
    Counter &named_c = reg.counter("same");
    Gauge &named_g = reg.gauge("same");
    named_c.add(1);
    named_g.set(2.0);
    EXPECT_EQ(reg.counter("same").value(), 1u);
    EXPECT_EQ(reg.gauge("same").value(), 2.0);
}

TEST(RegistryTest, ExportsAreNameSorted)
{
    Registry reg;
    reg.counter("zeta").add(1);
    reg.counter("alpha").add(2);
    reg.counter("mid").add(3);
    const auto counters = reg.counters();
    ASSERT_EQ(counters.size(), 3u);
    EXPECT_EQ(counters[0].first, "alpha");
    EXPECT_EQ(counters[1].first, "mid");
    EXPECT_EQ(counters[2].first, "zeta");

    reg.gauge("b").set(1.0);
    reg.gauge("a").set(2.0);
    const auto gauges = reg.gauges();
    ASSERT_EQ(gauges.size(), 2u);
    EXPECT_EQ(gauges[0].first, "a");
    EXPECT_EQ(gauges[1].first, "b");
}

TEST(RegistryTest, ResetZeroesValuesKeepsRegistrations)
{
    Registry reg;
    Counter &c = reg.counter("c");
    Gauge &g = reg.gauge("g");
    Histogram &h = reg.histogram("h");
    c.add(5);
    g.set(1.5);
    h.record(100);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0.0);
    EXPECT_EQ(h.snapshot().count, 0u);
    // Same addresses after reset: registrations survived.
    EXPECT_EQ(&reg.counter("c"), &c);
    EXPECT_EQ(&reg.gauge("g"), &g);
    EXPECT_EQ(&reg.histogram("h"), &h);
}

// ------------------------------------------------ histogram properties

TEST(HistogramTest, BucketBoundaries)
{
    // Bucket 0 holds exactly 0; bucket i holds [2^(i-1), 2^i).
    EXPECT_EQ(HistogramSnapshot::bucketOf(0), 0u);
    EXPECT_EQ(HistogramSnapshot::bucketOf(1), 1u);
    EXPECT_EQ(HistogramSnapshot::bucketOf(2), 2u);
    EXPECT_EQ(HistogramSnapshot::bucketOf(3), 2u);
    EXPECT_EQ(HistogramSnapshot::bucketOf(4), 3u);
    for (size_t k = 1; k < 64; ++k) {
        const uint64_t pow = uint64_t{1} << k;
        EXPECT_EQ(HistogramSnapshot::bucketOf(pow), k + 1) << "2^" << k;
        EXPECT_EQ(HistogramSnapshot::bucketOf(pow - 1), k)
            << "2^" << k << "-1";
    }
    EXPECT_EQ(HistogramSnapshot::bucketOf(UINT64_MAX), 64u);

    EXPECT_EQ(HistogramSnapshot::bucketUpperBound(0), 0u);
    EXPECT_EQ(HistogramSnapshot::bucketUpperBound(1), 1u);
    EXPECT_EQ(HistogramSnapshot::bucketUpperBound(2), 3u);
    EXPECT_EQ(HistogramSnapshot::bucketUpperBound(63),
              (uint64_t{1} << 63) - 1);
    EXPECT_EQ(HistogramSnapshot::bucketUpperBound(64), UINT64_MAX);

    // Every value must satisfy its own bucket's bounds.
    std::mt19937_64 rng(3);
    for (int i = 0; i < 10000; ++i) {
        const uint64_t v = rng() >> (rng() % 64);
        const size_t b = HistogramSnapshot::bucketOf(v);
        ASSERT_LT(b, HistogramSnapshot::kBuckets);
        ASSERT_LE(v, HistogramSnapshot::bucketUpperBound(b));
        if (b > 0)
            ASSERT_GT(v, HistogramSnapshot::bucketUpperBound(b - 1));
    }
}

TEST(HistogramTest, RecordTracksCountSumMinMax)
{
    Histogram h;
    const uint64_t values[] = {5, 0, 1000, 42, 7};
    uint64_t sum = 0;
    for (uint64_t v : values) {
        h.record(v);
        sum += v;
    }
    const HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, 5u);
    EXPECT_EQ(s.sum, sum);
    EXPECT_EQ(s.min, 0u);
    EXPECT_EQ(s.max, 1000u);
    EXPECT_EQ(s.buckets[HistogramSnapshot::bucketOf(0)], 1u);
    EXPECT_EQ(s.buckets[HistogramSnapshot::bucketOf(1000)], 1u);

    h.reset();
    const HistogramSnapshot z = h.snapshot();
    EXPECT_EQ(z.count, 0u);
    EXPECT_EQ(z.sum, 0u);
    EXPECT_EQ(z.min, UINT64_MAX);
    EXPECT_EQ(z.max, 0u);
}

HistogramSnapshot
randomSnapshot(uint64_t seed, int n)
{
    Histogram h;
    std::mt19937_64 rng(seed);
    for (int i = 0; i < n; ++i)
        h.record(rng() >> (rng() % 64));
    return h.snapshot();
}

void
expectSnapshotsEqual(const HistogramSnapshot &a,
                     const HistogramSnapshot &b)
{
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.sum, b.sum);
    EXPECT_EQ(a.min, b.min);
    EXPECT_EQ(a.max, b.max);
    for (size_t i = 0; i < HistogramSnapshot::kBuckets; ++i)
        ASSERT_EQ(a.buckets[i], b.buckets[i]) << "bucket " << i;
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative)
{
    const HistogramSnapshot a = randomSnapshot(1, 500);
    const HistogramSnapshot b = randomSnapshot(2, 300);
    const HistogramSnapshot c = randomSnapshot(3, 700);

    // (a + b) + c
    HistogramSnapshot ab = a;
    ab.merge(b);
    HistogramSnapshot ab_c = ab;
    ab_c.merge(c);
    // a + (b + c)
    HistogramSnapshot bc = b;
    bc.merge(c);
    HistogramSnapshot a_bc = a;
    a_bc.merge(bc);
    expectSnapshotsEqual(ab_c, a_bc);

    // a + b == b + a
    HistogramSnapshot ba = b;
    ba.merge(a);
    expectSnapshotsEqual(ab, ba);

    // Merging an empty snapshot is the identity (min stays intact).
    HistogramSnapshot a_id = a;
    a_id.merge(HistogramSnapshot{});
    expectSnapshotsEqual(a_id, a);
}

TEST(HistogramTest, MergeEqualsSingleHistogramOfUnion)
{
    // Per-worker histograms merged after the fact must equal one
    // shared histogram fed the union of the samples.
    std::mt19937_64 rng(9);
    Histogram shared, wa, wb;
    for (int i = 0; i < 2000; ++i) {
        const uint64_t v = rng() >> (rng() % 64);
        shared.record(v);
        ((i & 1) != 0 ? wa : wb).record(v);
    }
    HistogramSnapshot merged = wa.snapshot();
    merged.merge(wb.snapshot());
    expectSnapshotsEqual(merged, shared.snapshot());
}

TEST(HistogramTest, QuantileIsMonotoneAndBounded)
{
    for (uint64_t seed : {4u, 5u, 6u}) {
        const HistogramSnapshot s = randomSnapshot(seed, 1000);
        uint64_t prev = 0;
        for (int i = 0; i <= 100; ++i) {
            const double q = static_cast<double>(i) / 100.0;
            const uint64_t v = s.quantile(q);
            ASSERT_GE(v, s.min) << "q=" << q;
            ASSERT_LE(v, s.max) << "q=" << q;
            ASSERT_GE(v, prev) << "q=" << q << " seed " << seed;
            prev = v;
        }
    }
}

TEST(HistogramTest, QuantileEdgeCases)
{
    EXPECT_EQ(HistogramSnapshot{}.quantile(0.5), 0u); // empty

    Histogram h;
    h.record(42);
    const HistogramSnapshot one = h.snapshot();
    // A single sample: every quantile is that sample (the bucket upper
    // bound clamps into [min, max] = [42, 42]).
    EXPECT_EQ(one.quantile(0.0), 42u);
    EXPECT_EQ(one.quantile(0.5), 42u);
    EXPECT_EQ(one.quantile(1.0), 42u);

    // Out-of-range q is clamped, not UB.
    EXPECT_EQ(one.quantile(-3.0), 42u);
    EXPECT_EQ(one.quantile(7.0), 42u);
}

TEST(HistogramTest, QuantileUpperBoundProperty)
{
    // quantile(q) upper-bounds the true quantile: at least
    // ceil(q * count) samples are <= the returned value.
    std::mt19937_64 rng(17);
    Histogram h;
    std::vector<uint64_t> samples;
    for (int i = 0; i < 5000; ++i) {
        const uint64_t v = rng() >> (rng() % 64);
        h.record(v);
        samples.push_back(v);
    }
    const HistogramSnapshot s = h.snapshot();
    for (double q : {0.1, 0.5, 0.9, 0.99}) {
        const uint64_t v = s.quantile(q);
        const uint64_t target = static_cast<uint64_t>(
            std::ceil(q * static_cast<double>(samples.size())));
        uint64_t at_or_below = 0;
        for (uint64_t x : samples)
            if (x <= v)
                ++at_or_below;
        EXPECT_GE(at_or_below, target) << "q=" << q;
    }
}

} // namespace
} // namespace mimoarch::telemetry
