/**
 * @file
 * Overhead-budget guardrails for the telemetry primitives. The real
 * budget is enforced by bench/micro_overhead and the hotpath bench's
 * ns/step trajectory; these tests only catch order-of-magnitude
 * regressions (an accidental lock, allocation, or syscall on the
 * record path), so the bounds are deliberately generous — hundreds of
 * times the expected cost — to stay robust on loaded CI machines.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>

#include "telemetry/telemetry.hpp"

namespace mimoarch::telemetry {
namespace {

/** Average ns per call of @p op over enough iterations to smooth
 *  scheduler noise. */
template <typename Op>
double
averageNs(Op &&op, int iterations)
{
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    for (int i = 0; i < iterations; ++i)
        op(i);
    const auto t1 = clock::now();
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(t1 -
                                                                    t0)
                   .count()) /
        static_cast<double>(iterations);
}

// Expected costs are single-digit to low-double-digit nanoseconds;
// the bound tolerates two orders of magnitude of machine noise.
constexpr double kGenerousNsBound = 2000.0;
constexpr int kIterations = 200000;

TEST(TelemetryOverhead, CounterAddIsCheap)
{
    Counter c;
    const double ns = averageNs([&](int) { c.add(1); }, kIterations);
    EXPECT_LT(ns, kGenerousNsBound) << "Counter::add costs " << ns
                                    << " ns/op";
    EXPECT_EQ(c.value(), static_cast<uint64_t>(kIterations));
}

TEST(TelemetryOverhead, HistogramRecordIsCheap)
{
    Histogram h;
    const double ns = averageNs(
        [&](int i) { h.record(static_cast<uint64_t>(i)); }, kIterations);
    EXPECT_LT(ns, kGenerousNsBound) << "Histogram::record costs " << ns
                                    << " ns/op";
}

TEST(TelemetryOverhead, DisarmedSpanIsCheap)
{
    // No trace armed, no latency sink: the Span must skip the clock
    // read entirely, so this is the cost instrumented code pays when
    // nobody is listening.
    ASSERT_FALSE(trace().enabled());
    const double ns = averageNs(
        [](int) { Span span("idle", "test"); }, kIterations);
    EXPECT_LT(ns, kGenerousNsBound) << "disarmed Span costs " << ns
                                    << " ns/op";
}

TEST(TelemetryOverhead, ArmedSpanIsCheap)
{
    trace().start(size_t{1} << 19);
    Histogram lat;
    const double ns = averageNs(
        [&](int i) { Span span("work", "test", &lat, "i", i); },
        kIterations);
    trace().stop();
    trace().clear();
    EXPECT_LT(ns, 10.0 * kGenerousNsBound)
        << "armed Span costs " << ns << " ns/op";
    EXPECT_EQ(lat.snapshot().count, static_cast<uint64_t>(kIterations));
}

} // namespace
} // namespace mimoarch::telemetry
