/**
 * @file
 * Telemetry peak-RSS guard: arming the trace buffer for a multi-app
 * sweep must not balloon resident memory. The TraceBuffer is sized
 * from the configured sweep length (telemetry::traceCapacityForEpochs)
 * rather than a fixed worst-case preallocation, so the armed sweep's
 * peak RSS must stay within 2x the disarmed sweep's — the ROADMAP
 * guard for "telemetry that scales with the workload". The real
 * ON-vs-OFF wall/RSS deltas are tracked in BENCH_hotpath.json; this
 * tier-1 test only pins the memory bound.
 *
 * Ordering is load-bearing: getrusage() peak RSS is monotonic over a
 * process's life, so the disarmed sweep MUST run first — if the armed
 * sweep ran first, its peak would be charged to the disarmed
 * measurement too and the ratio would be vacuously 1.
 */

#include <gtest/gtest.h>

#include <sys/resource.h>

#include "core/controllers.hpp"
#include "core/harness.hpp"
#include "exec/sweep.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/spec_suite.hpp"

namespace mimoarch {
namespace {

double
peakRssMb()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0.0;
    return static_cast<double>(ru.ru_maxrss) / 1024.0; // KiB on Linux
}

/** One 6-app fixed-knob sweep (the hotpath bench's shape, shorter). */
void
runSixAppSweep(size_t epochs)
{
    const std::vector<std::string> apps = {"perlbench", "bzip2",
                                           "gcc",       "mcf",
                                           "milc",      "namd"};
    exec::SweepOptions opt;
    opt.jobs = 1;
    exec::SweepRunner runner(opt);
    std::vector<exec::JobKey> keys;
    for (const std::string &app : apps)
        keys.push_back({app, "rss-guard", 0, 0});
    KnobSettings fixed_at;
    fixed_at.freqLevel = 8;
    fixed_at.cacheSetting = 2;
    const auto out = runner.mapJobs<double>(
        keys, /*fingerprint=*/0x55D33Au,
        [&](const exec::JobContext &ctx) {
            const KnobSpace knobs(false);
            SimPlant plant(Spec2006Suite::byName(ctx.key.app), knobs);
            FixedController ctrl(fixed_at);
            DriverConfig dcfg;
            dcfg.epochs = epochs;
            dcfg.cancel = &ctx.cancel;
            EpochDriver driver(plant, ctrl, dcfg);
            return driver.run(KnobSettings{}).exdMetric(2);
        });
    ASSERT_EQ(out.results.size(), apps.size());
}

TEST(TelemetryRssGuard, ArmedSweepPeakRssWithinTwiceDisarmed)
{
    ASSERT_FALSE(telemetry::trace().enabled())
        << "another test left the trace buffer armed";
    const size_t epochs = 150;
    const size_t total_epochs = 6 * epochs;

    // Disarmed first (see the file comment: peak RSS is monotonic).
    runSixAppSweep(epochs);
    const double peak_off = peakRssMb();
    ASSERT_GT(peak_off, 0.0);

    // Armed, buffer sized from the configured sweep length.
    telemetry::trace().start(
        telemetry::traceCapacityForEpochs(total_epochs));
    runSixAppSweep(epochs);
    const double peak_on = peakRssMb();
    const size_t captured = telemetry::trace().size();
    telemetry::trace().stop();
    telemetry::trace().clear();

    // Non-vacuous: the armed sweep really traced something.
    EXPECT_GT(captured, 0u) << "armed sweep captured no trace events";

    EXPECT_LE(peak_on, 2.0 * peak_off)
        << "telemetry-armed sweep peaked at " << peak_on
        << " MB vs " << peak_off << " MB disarmed ("
        << total_epochs << " epochs, buffer capacity "
        << telemetry::traceCapacityForEpochs(total_epochs) << ")";
}

} // namespace
} // namespace mimoarch
