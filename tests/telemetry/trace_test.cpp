/**
 * @file
 * TraceBuffer and Span behavior: event recording, overflow drops,
 * clear/stop semantics, and the Span RAII sinks (trace events and
 * latency histograms).
 */

#include <gtest/gtest.h>

#include <string>

#include "telemetry/telemetry.hpp"

namespace mimoarch::telemetry {
namespace {

TEST(TraceBufferTest, RecordsCompleteAndInstantEvents)
{
    TraceBuffer tb;
    EXPECT_FALSE(tb.enabled());
    tb.start(8);
    EXPECT_TRUE(tb.enabled());

    tb.complete("phase", "cat", 1000, 250, "k", 7);
    tb.instant("mark", "cat", 2000);
    tb.stop();
    EXPECT_FALSE(tb.enabled());

    ASSERT_EQ(tb.size(), 2u);
    const TraceEvent &c = tb[0];
    EXPECT_STREQ(c.name, "phase");
    EXPECT_STREQ(c.category, "cat");
    EXPECT_EQ(c.tsNs, 1000u);
    EXPECT_EQ(c.durNs, 250u);
    EXPECT_STREQ(c.argKey, "k");
    EXPECT_EQ(c.argValue, 7);
    EXPECT_EQ(c.type, EventType::Complete);

    const TraceEvent &i = tb[1];
    EXPECT_STREQ(i.name, "mark");
    EXPECT_EQ(i.tsNs, 2000u);
    EXPECT_EQ(i.argKey, nullptr);
    EXPECT_EQ(i.type, EventType::Instant);
}

TEST(TraceBufferTest, DisabledBufferDropsNothingAndRecordsNothing)
{
    TraceBuffer tb;
    tb.instant("ignored", "cat", 1);
    EXPECT_EQ(tb.size(), 0u);
    EXPECT_EQ(tb.dropped(), 0u);
}

TEST(TraceBufferTest, OverflowDropsAndCounts)
{
    TraceBuffer tb;
    tb.start(4);
    for (int i = 0; i < 10; ++i)
        tb.instant("e", "cat", static_cast<uint64_t>(i));
    tb.stop();
    EXPECT_EQ(tb.size(), 4u);
    EXPECT_EQ(tb.dropped(), 6u);
    // The first capacity-many events are the ones kept.
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(tb[i].tsNs, i);
}

TEST(TraceBufferTest, ClearKeepsCapacityAndState)
{
    TraceBuffer tb;
    tb.start(4);
    for (int i = 0; i < 10; ++i)
        tb.instant("e", "cat", 0);
    tb.clear();
    EXPECT_EQ(tb.size(), 0u);
    EXPECT_EQ(tb.dropped(), 0u);
    EXPECT_TRUE(tb.enabled());
    tb.instant("after", "cat", 5);
    ASSERT_EQ(tb.size(), 1u);
    EXPECT_STREQ(tb[0].name, "after");
    tb.stop();
}

TEST(TraceBufferDeathTest, ZeroCapacityStartIsFatal)
{
    TraceBuffer tb;
    EXPECT_EXIT(tb.start(0), testing::ExitedWithCode(1),
                "TraceBuffer");
}

TEST(SpanTest, RecordsLatencyWithoutTracing)
{
    ASSERT_FALSE(trace().enabled());
    Histogram h;
    {
        Span span("work", "test", &h);
    }
    const HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, 1u);
}

TEST(SpanTest, EmitsTraceEventWhenArmed)
{
    TraceBuffer &tb = trace();
    tb.start(16);
    {
        Span span("stage", "test", nullptr, "idx", 3);
    }
    tb.stop();
    ASSERT_EQ(tb.size(), 1u);
    EXPECT_STREQ(tb[0].name, "stage");
    EXPECT_STREQ(tb[0].category, "test");
    EXPECT_STREQ(tb[0].argKey, "idx");
    EXPECT_EQ(tb[0].argValue, 3);
    EXPECT_EQ(tb[0].type, EventType::Complete);
    tb.clear();
}

TEST(SpanTest, FeedsBothSinksWhenBothActive)
{
    Histogram h;
    TraceBuffer &tb = trace();
    tb.start(16);
    {
        Span span("stage", "test", &h);
    }
    tb.stop();
    EXPECT_EQ(tb.size(), 1u);
    EXPECT_EQ(h.snapshot().count, 1u);
    // The histogram saw the same duration the trace event carries.
    EXPECT_EQ(h.snapshot().sum, tb[0].durNs);
    tb.clear();
}

TEST(TelemetryTest, NowNsIsMonotone)
{
    const uint64_t a = nowNs();
    const uint64_t b = nowNs();
    EXPECT_LE(a, b);
}

TEST(TelemetryTest, ThreadIdIsStablePerThread)
{
    const uint32_t a = threadId();
    const uint32_t b = threadId();
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace mimoarch::telemetry
