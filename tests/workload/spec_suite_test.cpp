/**
 * @file
 * Suite tests: the paper's set memberships (training, validation,
 * responsive/non-responsive), spec well-formedness, and the behavioural
 * separation between responsive and non-responsive apps on the
 * simulator (the property Fig. 11 depends on).
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "sim/processor.hpp"
#include "workload/spec_suite.hpp"
#include "workload/synthetic_stream.hpp"

namespace mimoarch {
namespace {

std::set<std::string>
names(const std::vector<AppSpec> &apps)
{
    std::set<std::string> out;
    for (const AppSpec &a : apps)
        out.insert(a.name);
    return out;
}

TEST(SpecSuite, TrainingSetMatchesPaper)
{
    EXPECT_EQ(names(Spec2006Suite::trainingSet()),
              (std::set<std::string>{"sjeng", "gobmk", "leslie3d",
                                     "namd"}));
}

TEST(SpecSuite, ValidationSetMatchesPaper)
{
    EXPECT_EQ(names(Spec2006Suite::validationSet()),
              (std::set<std::string>{"h264ref", "tonto"}));
}

TEST(SpecSuite, ProductionSetHas23Apps)
{
    EXPECT_EQ(Spec2006Suite::productionSet().size(), 23u);
}

TEST(SpecSuite, NonResponsiveListMatchesPaper)
{
    // Paper §VIII-D lists exactly these 14.
    EXPECT_EQ(names(Spec2006Suite::nonResponsiveSet()),
              (std::set<std::string>{
                  "bzip2", "gcc", "hmmer", "h264ref", "libquantum", "mcf",
                  "omnetpp", "perlbench", "Xalan", "bwaves", "dealII",
                  "GemsFDTD", "lbm", "soplex"}));
}

TEST(SpecSuite, ResponsivePlusNonResponsiveIsProduction)
{
    EXPECT_EQ(Spec2006Suite::responsiveSet().size() +
                  Spec2006Suite::nonResponsiveSet().size(),
              Spec2006Suite::productionSet().size());
}

TEST(SpecSuite, AllSpecsWellFormed)
{
    for (const AppSpec &app : Spec2006Suite::all()) {
        EXPECT_FALSE(app.phases.empty()) << app.name;
        for (const PhaseSpec &p : app.phases) {
            const double mix = p.loadFrac + p.storeFrac + p.branchFrac +
                p.intMulFrac + p.intDivFrac + p.fpAluFrac + p.fpMulFrac +
                p.fpDivFrac;
            EXPECT_LT(mix, 1.0) << app.name;
            EXPECT_GT(p.meanDepDist, 1.0) << app.name;
            EXPECT_GT(p.hotBytes, 0u) << app.name;
            EXPECT_GT(p.lengthEpochs, 0u) << app.name;
        }
    }
}

TEST(SpecSuite, NamesAreUnique)
{
    EXPECT_EQ(names(Spec2006Suite::all()).size(),
              Spec2006Suite::all().size());
}

TEST(SpecSuite, UnknownNameIsFatal)
{
    EXPECT_EXIT(Spec2006Suite::byName("zeusmp"),
                testing::ExitedWithCode(1), "unknown application");
}

TEST(SpecSuite, FpAppsHaveFpOps)
{
    for (const AppSpec &app : Spec2006Suite::all()) {
        const double fp = app.phases[0].fpAluFrac +
            app.phases[0].fpMulFrac + app.phases[0].fpDivFrac;
        if (app.category == AppCategory::Fp)
            EXPECT_GT(fp, 0.1) << app.name;
        else
            EXPECT_LT(fp, 0.05) << app.name;
    }
}

/** Max-configuration IPS for an app (short run). */
double
maxConfigIps(const AppSpec &app)
{
    SyntheticStream stream(app);
    ProcessorConfig cfg;
    cfg.sampleCycles = 3000;
    Processor proc(cfg, &stream);
    proc.setFrequencyLevel(15);
    proc.setCacheSizeSetting(3);
    double ips = 0;
    const int warm = 150, meas = 20;
    for (int i = 0; i < warm; ++i) {
        proc.runEpoch();
        stream.nextEpoch();
    }
    for (int i = 0; i < meas; ++i) {
        ips += proc.runEpoch().ips;
        stream.nextEpoch();
    }
    return ips / meas;
}

TEST(SpecSuite, ResponsiveAppsCanApproachTarget)
{
    for (const AppSpec &app : Spec2006Suite::responsiveSet())
        EXPECT_GT(maxConfigIps(app), 1.9) << app.name;
}

TEST(SpecSuite, NonResponsiveAppsCannotReachTarget)
{
    for (const AppSpec &app : Spec2006Suite::nonResponsiveSet())
        EXPECT_LT(maxConfigIps(app), 1.9) << app.name;
}

} // namespace
} // namespace mimoarch
