/**
 * @file
 * Synthetic stream tests: determinism, instruction-mix convergence,
 * working-set confinement, phase transitions, and branch-site behaviour.
 */

#include <array>
#include <map>

#include <gtest/gtest.h>

#include "workload/synthetic_stream.hpp"

namespace mimoarch {
namespace {

AppSpec
simpleApp()
{
    AppSpec app;
    app.name = "test";
    app.seed = 42;
    PhaseSpec p;
    p.loadFrac = 0.3;
    p.storeFrac = 0.1;
    p.branchFrac = 0.2;
    p.hotBytes = 16 * 1024;
    p.lengthEpochs = 10;
    app.phases.push_back(p);
    return app;
}

TEST(SyntheticStream, DeterministicForSameSeed)
{
    SyntheticStream a(simpleApp());
    SyntheticStream b(simpleApp());
    for (int i = 0; i < 1000; ++i) {
        const MicroOp oa = a.next();
        const MicroOp ob = b.next();
        EXPECT_EQ(oa.cls, ob.cls);
        EXPECT_EQ(oa.addr, ob.addr);
        EXPECT_EQ(oa.pc, ob.pc);
        EXPECT_EQ(oa.taken, ob.taken);
    }
}

TEST(SyntheticStream, SaltChangesTheStream)
{
    SyntheticStream a(simpleApp(), 0);
    SyntheticStream b(simpleApp(), 1);
    int diffs = 0;
    for (int i = 0; i < 200; ++i)
        if (a.next().cls != b.next().cls)
            ++diffs;
    EXPECT_GT(diffs, 10);
}

TEST(SyntheticStream, MixConvergesToSpec)
{
    SyntheticStream s(simpleApp());
    std::array<int, kNumOpClasses> counts{};
    const int n = 60000;
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<size_t>(s.next().cls)];
    const auto frac = [&](OpClass c) {
        return static_cast<double>(counts[static_cast<size_t>(c)]) / n;
    };
    EXPECT_NEAR(frac(OpClass::Load), 0.3, 0.02);
    EXPECT_NEAR(frac(OpClass::Store), 0.1, 0.02);
    EXPECT_NEAR(frac(OpClass::Branch), 0.2, 0.02);
}

TEST(SyntheticStream, HotAddressesStayInWorkingSet)
{
    AppSpec app = simpleApp();
    app.phases[0].streamFrac = 0.0;
    SyntheticStream s(app);
    for (int i = 0; i < 20000; ++i) {
        const MicroOp op = s.next();
        if (op.cls == OpClass::Load || op.cls == OpClass::Store) {
            EXPECT_GE(op.addr, 0x1000'0000u);
            EXPECT_LT(op.addr, 0x1000'0000u + 16 * 1024 + 64);
        }
    }
}

TEST(SyntheticStream, StreamingAddressesAdvanceSequentially)
{
    AppSpec app = simpleApp();
    app.phases[0].streamFrac = 1.0;
    SyntheticStream s(app);
    uint64_t last = 0;
    int mem_ops = 0;
    for (int i = 0; i < 5000 && mem_ops < 100; ++i) {
        const MicroOp op = s.next();
        if (op.cls == OpClass::Load || op.cls == OpClass::Store) {
            if (mem_ops > 0)
                EXPECT_EQ(op.addr, last + 64);
            last = op.addr;
            ++mem_ops;
        }
    }
    EXPECT_GE(mem_ops, 100);
}

TEST(SyntheticStream, PhaseAdvancesAfterConfiguredEpochs)
{
    AppSpec app = simpleApp();
    PhaseSpec second = app.phases[0];
    second.loadFrac = 0.05;
    second.lengthEpochs = 5;
    app.phases.push_back(second);

    SyntheticStream s(app);
    EXPECT_EQ(s.currentPhase(), 0u);
    for (int e = 0; e < 10; ++e)
        s.nextEpoch();
    EXPECT_EQ(s.currentPhase(), 1u);
    for (int e = 0; e < 5; ++e)
        s.nextEpoch();
    EXPECT_EQ(s.currentPhase(), 0u); // wraps around
}

TEST(SyntheticStream, PhaseChangesTheMix)
{
    AppSpec app = simpleApp();
    PhaseSpec second = app.phases[0];
    second.loadFrac = 0.02;
    second.storeFrac = 0.02;
    app.phases.push_back(second);
    SyntheticStream s(app);

    const auto load_frac = [&] {
        int loads = 0;
        const int n = 20000;
        for (int i = 0; i < n; ++i)
            if (s.next().cls == OpClass::Load)
                ++loads;
        return static_cast<double>(loads) / n;
    };
    const double phase0 = load_frac();
    for (int e = 0; e < 10; ++e)
        s.nextEpoch();
    const double phase1 = load_frac();
    EXPECT_GT(phase0, 0.25);
    EXPECT_LT(phase1, 0.08);
}

TEST(SyntheticStream, DependencyDistancesRespectMean)
{
    AppSpec app = simpleApp();
    app.phases[0].meanDepDist = 8.0;
    SyntheticStream s(app);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += s.next().srcDist0;
    const double mean = sum / n;
    EXPECT_GT(mean, 5.0);
    EXPECT_LT(mean, 11.0);
}

TEST(SyntheticStream, BranchSitesReusePcs)
{
    SyntheticStream s(simpleApp());
    std::map<uint64_t, int> pcs;
    for (int i = 0; i < 30000; ++i) {
        const MicroOp op = s.next();
        if (op.cls == OpClass::Branch)
            ++pcs[op.pc];
    }
    // 64 sites (possibly with a few collisions).
    EXPECT_LE(pcs.size(), 64u);
    EXPECT_GE(pcs.size(), 16u);
}

TEST(SyntheticStream, EmptyPhasesIsFatal)
{
    AppSpec app;
    app.name = "broken";
    EXPECT_EXIT(SyntheticStream s(app), testing::ExitedWithCode(1),
                "no phases");
}

} // namespace
} // namespace mimoarch
