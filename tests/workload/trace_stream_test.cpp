/**
 * @file
 * Trace-stream tests: parsing every op class, comments/blank lines,
 * looping, error handling, and running a trace through the core.
 */

#include <gtest/gtest.h>

#include "sim/core.hpp"
#include "workload/trace_stream.hpp"

namespace mimoarch {
namespace {

TEST(TraceStream, ParsesEveryOpClass)
{
    const std::string text =
        "IA 400000\n"
        "IM 400004 1\n"
        "ID 400008 2 3\n"
        "FA 40000c\n"
        "FM 400010\n"
        "FD 400014\n"
        "LD 400018 dead00 1\n"
        "ST 40001c beef40\n"
        "BR 400020 T\n";
    TraceStream ts = TraceStream::fromString(text);
    EXPECT_EQ(ts.length(), 9u);
    EXPECT_EQ(ts.next().cls, OpClass::IntAlu);
    const MicroOp mul = ts.next();
    EXPECT_EQ(mul.cls, OpClass::IntMul);
    EXPECT_EQ(mul.srcDist0, 1);
    const MicroOp divi = ts.next();
    EXPECT_EQ(divi.srcDist0, 2);
    EXPECT_EQ(divi.srcDist1, 3);
    ts.next();
    ts.next();
    ts.next();
    const MicroOp ld = ts.next();
    EXPECT_EQ(ld.cls, OpClass::Load);
    EXPECT_EQ(ld.addr, 0xdead00u);
    EXPECT_EQ(ld.srcDist0, 1);
    const MicroOp st = ts.next();
    EXPECT_EQ(st.cls, OpClass::Store);
    EXPECT_EQ(st.addr, 0xbeef40u);
    const MicroOp br = ts.next();
    EXPECT_EQ(br.cls, OpClass::Branch);
    EXPECT_TRUE(br.taken);
    EXPECT_EQ(br.pc, 0x400020u);
}

TEST(TraceStream, SkipsCommentsAndBlanks)
{
    const std::string text =
        "# a comment\n"
        "\n"
        "IA 400000\n"
        "   \n"
        "# another\n"
        "IA 400004\n";
    TraceStream ts = TraceStream::fromString(text);
    EXPECT_EQ(ts.length(), 2u);
}

TEST(TraceStream, LoopsForever)
{
    TraceStream ts = TraceStream::fromString("IA 400000\nIA 400004\n");
    for (int i = 0; i < 7; ++i)
        ts.next();
    EXPECT_EQ(ts.loops(), 3u);
    // And the 8th op is the second one again.
    EXPECT_EQ(ts.next().pc, 0x400004u);
}

TEST(TraceStream, NotTakenBranch)
{
    TraceStream ts = TraceStream::fromString("BR 400020 N\n");
    EXPECT_FALSE(ts.next().taken);
}

TEST(TraceStream, MalformedLinesAreFatal)
{
    EXPECT_EXIT(TraceStream::fromString("XX 400000\n"),
                testing::ExitedWithCode(1), "unknown op class");
    EXPECT_EXIT(TraceStream::fromString("IA\n"),
                testing::ExitedWithCode(1), "missing pc");
    EXPECT_EXIT(TraceStream::fromString("LD 400000\n"),
                testing::ExitedWithCode(1), "missing address");
    EXPECT_EXIT(TraceStream::fromString("BR 400000 X\n"),
                testing::ExitedWithCode(1), "T\\|N");
    EXPECT_EXIT(TraceStream::fromString("IA zzz\n"),
                testing::ExitedWithCode(1), "bad hex");
    EXPECT_EXIT(TraceStream::fromString("IA 400000 1 2 3\n"),
                testing::ExitedWithCode(1), "trailing");
}

TEST(TraceStream, EmptyTraceIsFatal)
{
    EXPECT_EXIT(TraceStream::fromString("# only comments\n"),
                testing::ExitedWithCode(1), "empty");
}

TEST(TraceStream, MissingFileIsFatal)
{
    EXPECT_EXIT(TraceStream::fromFile("/nonexistent/trace.txt"),
                testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceStream, DrivesTheCore)
{
    // A small loop body: 3 ALU ops, a load, a mostly-taken branch.
    std::string text;
    for (int i = 0; i < 16; ++i) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "IA %x\nIA %x 1\nLD %x %x 2\nBR %x %s\n",
                      0x400000 + i * 16, 0x400004 + i * 16,
                      0x400008 + i * 16, 0x10000 + i * 64,
                      0x40000c + i * 16, i == 15 ? "N" : "T");
        text += buf;
    }
    TraceStream ts = TraceStream::fromString(text);
    MemoryHierarchy mem;
    Core core(CoreConfig{}, &ts, &mem);
    core.run(20000, 1.0);
    core.resetCounters();
    core.run(5000, 1.0);
    EXPECT_GT(core.counters().ipc(), 0.8);
    EXPECT_GT(core.counters().branchLookups, 0u);
    EXPECT_GT(core.counters().l1dAccesses, 0u);
}

} // namespace
} // namespace mimoarch
